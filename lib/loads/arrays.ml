type t = {
  load_time : int array;
  cur_times : int array;
  cur : int array;
  time_step : float;
  charge_unit : float;
}

exception Not_representable of string

let validate { load_time; cur_times; cur; time_step; charge_unit } =
  if time_step <= 0.0 || charge_unit <= 0.0 then
    invalid_arg "Loads.Arrays: discretization constants must be positive";
  let n = Array.length load_time in
  if Array.length cur_times <> n || Array.length cur <> n then
    invalid_arg "Loads.Arrays: the three arrays must have equal length";
  let prev = ref 0 in
  for y = 0 to n - 1 do
    if load_time.(y) <= !prev then
      invalid_arg "Loads.Arrays: load_time must be strictly increasing";
    prev := load_time.(y);
    if cur_times.(y) <= 0 then
      invalid_arg "Loads.Arrays: cur_times entries must be positive";
    if cur.(y) < 0 then invalid_arg "Loads.Arrays: cur entries must be >= 0"
  done

let of_arrays ~time_step ~charge_unit ~load_time ~cur_times ~cur =
  let t = { load_time; cur_times; cur; time_step; charge_unit } in
  validate t;
  t

let check_compatible t ~time_step ~charge_unit =
  let close a b = Float.abs (a -. b) <= 1e-12 *. Float.max a b in
  if not (close t.time_step time_step && close t.charge_unit charge_unit) then
    invalid_arg
      (Printf.sprintf
         "Loads.Arrays: load encoded for T=%g Gamma=%g replayed at T=%g           Gamma=%g"
         t.time_step t.charge_unit time_step charge_unit)

(* Smallest exact fraction p/q = x with small q, via Stern-Brocot descent
   over all of Q+; returns None when x is not such a fraction. *)
let to_fraction ~max_den x =
  let eps = 1e-9 in
  if x <= 0.0 then None
  else begin
    let rec go lo_p lo_q hi_p hi_q depth =
      if depth > 100_000 then None
      else begin
        let p = lo_p + hi_p and q = lo_q + hi_q in
        if q > max_den then None
        else begin
          let v = float_of_int p /. float_of_int q in
          if Float.abs (v -. x) <= eps *. Float.max 1.0 x then Some (p, q)
          else if v < x then go p q hi_p hi_q (depth + 1)
          else go lo_p lo_q p q (depth + 1)
        end
      end
    in
    go 0 1 1 0 0
  end

let round_steps ~time_step duration =
  let steps_f = duration /. time_step in
  let steps = int_of_float (Float.round steps_f) in
  if Float.abs (steps_f -. float_of_int steps) > 1e-6 *. Float.max 1.0 steps_f
  then
    raise
      (Not_representable
         (Printf.sprintf "epoch duration %g is not a multiple of the time step %g"
            duration time_step));
  steps

let make ~time_step ~charge_unit load =
  if time_step <= 0.0 then invalid_arg "Loads.Arrays.make: time_step <= 0";
  if charge_unit <= 0.0 then invalid_arg "Loads.Arrays.make: charge_unit <= 0";
  let encode_epoch (e : Epoch.epoch) =
    match e with
    | Epoch.Idle d ->
        let steps = round_steps ~time_step d in
        (steps, steps, 0)
    | Epoch.Job { current; duration } ->
        let steps = round_steps ~time_step duration in
        (* eq. (7): I = cur * Gamma / (cur_times * T), so
           cur / cur_times = I * T / Gamma. *)
        let ratio = current *. time_step /. charge_unit in
        let cur, cur_times =
          match to_fraction ~max_den:10_000 ratio with
          | Some (p, q) -> (p, q)
          | None ->
              raise
                (Not_representable
                   (Printf.sprintf
                      "current %g A has no exact cur/cur_times encoding at T=%g \
                       Gamma=%g"
                      current time_step charge_unit))
        in
        (steps, cur_times, cur)
  in
  let encoded = List.map encode_epoch (Epoch.epochs load) in
  let n = List.length encoded in
  if n = 0 then invalid_arg "Loads.Arrays.make: empty load";
  let load_time = Array.make n 0
  and cur_times = Array.make n 0
  and cur = Array.make n 0 in
  let clock = ref 0 in
  List.iteri
    (fun y (steps, ct, c) ->
      clock := !clock + steps;
      load_time.(y) <- !clock;
      cur_times.(y) <- ct;
      cur.(y) <- c)
    encoded;
  let t = { load_time; cur_times; cur; time_step; charge_unit } in
  validate t;
  t

let make_result ?input ~time_step ~charge_unit load =
  if time_step <= 0.0 then
    Error
      (Guard.Error.make ~subsystem:"loads.arrays" ?input ~field:"time_step"
         ~value:(string_of_float time_step)
         ~accepted:"a positive number of minutes" "time_step out of range")
  else if charge_unit <= 0.0 then
    Error
      (Guard.Error.make ~subsystem:"loads.arrays" ?input ~field:"charge_unit"
         ~value:(string_of_float charge_unit)
         ~accepted:"a positive charge quantum (A*min)"
         "charge_unit out of range")
  else
    match make ~time_step ~charge_unit load with
    | t -> Ok t
    | exception Not_representable msg ->
        Error
          (Guard.Error.make ~subsystem:"loads.arrays" ?input ~field:"load"
             ~value:msg
             ~accepted:
               "epoch durations on the time grid and currents with an exact \
                cur/cur_times <= 10000 encoding — adjust the load, \
                time_step or charge_unit"
             "load is not representable at this discretization")

let epoch_count t = Array.length t.load_time

let current t y =
  float_of_int t.cur.(y) *. t.charge_unit
  /. (float_of_int t.cur_times.(y) *. t.time_step)

let epoch_steps t y =
  if y = 0 then t.load_time.(0) else t.load_time.(y) - t.load_time.(y - 1)

let pp ppf t =
  Format.fprintf ppf "@[<v>load_time = [|%a|]@,cur_times = [|%a|]@,cur = [|%a|]@]"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    (Array.to_seq t.load_time)
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    (Array.to_seq t.cur_times)
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    (Array.to_seq t.cur)
