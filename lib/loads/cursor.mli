(** Step-accurate iteration over a load encoding — the shared half of the
    discharge kernel.

    Every engine in the repository (the single-battery dKiBaM replay, the
    multi-battery simulator, the optimal-search segment runner, the
    TA-KiBaM search heuristic) walks the same epoch/cadence structure: a
    job epoch of [len] steps with cadence [ct] contains [len / ct] draws
    of [cur] charge units, each due after [ct] recovery steps, followed by
    [len mod ct] trailing rest steps; the cadence clock restarts at every
    epoch start and at every mid-job switch-on.  A cursor precomputes that
    arithmetic for every epoch once, at construction, so that hot loops
    (notably the branch-and-bound optimal search, which revisits epochs
    thousands of times) never redo the division — and so that the cadence
    rules live in exactly one module. *)

type t
(** An iterable view of a {!Arrays.t}, with per-epoch draw schedules
    precomputed at construction. *)

val make : Arrays.t -> t
(** [make arrays] precomputes absolute epoch starts and the full-epoch
    draw schedule of every epoch.  O(number of epochs). *)

val arrays : t -> Arrays.t
(** The encoding this cursor iterates. *)

(** {2 Epoch geometry} *)

val epoch_count : t -> int
(** Number of epochs in the load. *)

val epoch_start : t -> int -> int
(** Absolute time step at which epoch [y] begins. *)

val epoch_end : t -> int -> int
(** Absolute time step at which epoch [y] ends ([load_time.(y)]). *)

val epoch_len : t -> int -> int
(** Length of epoch [y] in time steps. *)

val total_steps : t -> int
(** Absolute step at which the load ends. *)

val is_idle : t -> int -> bool
(** True when epoch [y] draws no charge ([cur = 0]).  A job epoch whose
    cadence exceeds its length is {e not} idle — it is a scheduling point
    that happens to contain no draw. *)

val job_count : t -> int
(** Number of non-idle epochs (precomputed schedules with draws). *)

(** {2 Draw schedules}

    The cadence arithmetic, in one place.  A schedule describes a span of
    a job epoch served with the cadence clock restarted at the span's
    first step: [draws] full draws of [cur] units, each due [ct] steps
    after the previous event, then [rest] trailing steps without a
    draw. *)

type schedule = {
  ct : int;  (** steps between consecutive draws *)
  cur : int;  (** charge units per draw; 0 for idle epochs *)
  draws : int;  (** draws that fit in the span *)
  rest : int;  (** trailing steps after the last draw *)
}

val schedule : t -> int -> schedule
(** [schedule t y]: the full-epoch schedule of epoch [y], precomputed at
    construction.  Idle epochs get [draws = 0], [rest = len]. *)

val schedule_from : ?skip_final:bool -> t -> int -> local:int -> schedule
(** [schedule_from t y ~local]: the schedule of epoch [y] restarted at
    offset [local] (a mid-job switch-on: the cadence clock resets, so
    [draws = (len - local) / ct]).  [local = 0] returns the precomputed
    full-epoch schedule.

    [skip_final] elides a draw that would land exactly on the epoch's
    last step — the go_off/use_charge race the published TA leaves open
    (see {!Sched.Optimal}): the final draw is dropped and its cadence
    interval becomes rest. *)

val max_draw_units_within : t -> int -> steps:int -> int
(** [max_draw_units_within t y ~steps]: an upper bound on the charge
    units epoch [y] can still draw in its remaining [steps] steps,
    whatever the cadence phase: [steps / ct * cur].  Used by admissible
    search heuristics. *)

val draw_units : t -> int -> int
(** Total charge units drawn by epoch [y]'s full schedule
    ([draws * cur]). *)

val draw_units_after : t -> int -> int
(** Charge units drawn by epochs [y+1 .. end] — the suffix dot-product
    of the encoding, precomputed at construction. *)

(** {2 Compiled flat schedules}

    The cursor's precomputed per-epoch draw schedules, exported as bare
    parallel [int array]s — the read-only load layout the
    struct-of-arrays batch engine ([Batch.Engine]) iterates with unsafe
    accesses.  The cursor itself stays the scalar path's iterator; a
    compiled view adds nothing to the semantics, it only flattens what
    {!schedule} already computed. *)

type compiled = private {
  c_starts : int array;  (** absolute step of each epoch's first step *)
  c_lens : int array;  (** epoch lengths in steps *)
  c_ct : int array;  (** steps between consecutive draws *)
  c_cur : int array;  (** charge units per draw; 0 for idle epochs *)
  c_draws : int array;  (** full draws in the whole epoch *)
  c_rest : int array;  (** trailing steps after the last full draw *)
  c_total : int;  (** absolute step at which the load ends *)
}

val max_compiled_steps : int
(** Ceiling on every step counter derivable from a compiled schedule
    ([max_int / 4]): absolute steps, per-epoch draw offsets and
    per-epoch drawn units all stay below it, so consumers can add and
    multiply them without a silent wrap. *)

val compile : t -> (compiled, Guard.Error.t) result
(** [compile t] flattens the precomputed schedules.  Loads whose total
    step count exceeds {!max_compiled_steps}, or whose per-epoch
    [draws * cur] product would overflow it, are rejected with a
    structured error instead of wrapping — batch consumers either get
    arrays they can trust or a {!Guard.Error.t} naming the offending
    field. *)

val compile_exn : t -> compiled
(** [compile] or raise {!Guard.Error.Error}. *)

(** {2 Event iteration}

    A pure pull-iterator over the load's event structure.  The event
    stream of a job epoch with schedule [{ct; cur; draws; rest}] is
    [(Idle ct, Draw cur)] repeated [draws] times, then [Idle rest] when
    [rest > 0], then [Epoch_end]; an idle epoch yields [Idle len] then
    [Epoch_end].  [Idle] spans are time; [Draw] and [Epoch_end] are
    instantaneous. *)

type event =
  | Idle of int  (** advance this many steps of pure recovery *)
  | Draw of int  (** draw this many charge units, now *)
  | Epoch_end  (** epoch boundary (bookkeeping only) *)

type pos
(** An immutable position in the event stream. *)

val start : t -> pos
(** The position before the first event. *)

val next : t -> pos -> (event * pos) option
(** The event at the position, and the position after it; [None] once
    the load is exhausted. *)

val step : t -> pos -> int
(** Absolute time step at a position.  Since [Draw] is instantaneous,
    the step after a [Draw] event is the instant of the draw itself. *)

val epoch : t -> pos -> int
(** Epoch index a position lies in; [epoch_count] at the end. *)
