exception Parse_error of string

(* All parse failures are structured (Guard.Error): they carry the
   offending field/token and the accepted shape, and [parse_result]
   attaches the full spec string as the input.  [fail] raises the
   internal exception the two entry points below convert. *)
let fail ?field ?value ?accepted fmt =
  Printf.ksprintf
    (fun what ->
      Guard.Error.raise_exn
        (Guard.Error.make ~subsystem:"loads.spec" ?field ?value ?accepted what))
    fmt

(* Tokenize: split on whitespace, but keep ';', '(' and ')' as their own
   tokens even when glued to neighbours. *)
let tokenize input =
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | ';' | '(' | ')' ->
          flush ();
          tokens := String.make 1 c :: !tokens
      | c -> Buffer.add_char buf c)
    input;
  flush ();
  List.rev !tokens

let float_token what = function
  | Some tok -> (
      match float_of_string_opt tok with
      | Some f when f > 0.0 -> f
      | Some _ ->
          fail ~field:what ~value:tok ~accepted:"a positive number"
            "%s must be positive" what
      | None ->
          fail ~field:what ~value:tok ~accepted:"a positive number"
            "expected a number for %s" what)
  | None -> fail ~field:what ~accepted:"a positive number" "missing %s" what

let int_token what = function
  | Some tok -> (
      match int_of_string_opt tok with
      | Some n when n > 0 -> n
      | Some _ ->
          fail ~field:what ~value:tok ~accepted:"a positive integer"
            "%s must be positive" what
      | None ->
          fail ~field:what ~value:tok ~accepted:"a positive integer"
            "expected an integer for %s" what)
  | None -> fail ~field:what ~accepted:"a positive integer" "missing %s" what

(* Recursive descent over the token list. *)
let parse_exn input =
  let tokens = ref (tokenize input) in
  let peek () = match !tokens with t :: _ -> Some t | [] -> None in
  let next () =
    match !tokens with
    | t :: rest ->
        tokens := rest;
        Some t
    | [] -> None
  in
  let expect tok =
    match next () with
    | Some t when t = tok -> ()
    | Some t ->
        fail ~field:"token" ~value:t ~accepted:(Printf.sprintf "%S" tok)
          "expected %S" tok
    | None ->
        fail ~field:"token" ~value:"end of input"
          ~accepted:(Printf.sprintf "%S" tok) "expected %S" tok
  in
  let rec seq () =
    let first = item () in
    match peek () with
    | Some ";" ->
        ignore (next ());
        Epoch.append first (seq ())
    | _ -> first
  and item () =
    match next () with
    | Some "job" ->
        let current = float_token "job current (amperes)" (next ()) in
        let duration = float_token "job duration (minutes)" (next ()) in
        Epoch.job ~current ~duration
    | Some "idle" -> Epoch.idle (float_token "idle duration (minutes)" (next ()))
    | Some "repeat" ->
        let n = int_token "repeat count" (next ()) in
        expect "(";
        let body = seq () in
        expect ")";
        Epoch.repeat n body
    | Some name -> (
        match Testloads.of_string name with
        | Some load -> Testloads.load load
        | None ->
            fail ~field:"item" ~value:name
              ~accepted:"job AMPS MINUTES | idle MINUTES | repeat N ( ... ) | \
                         a test-load name (e.g. ils_alt)"
              "unknown item")
    | None -> fail ~field:"spec" ~accepted:"at least one item" "empty specification"
  in
  let result = seq () in
  (match peek () with
  | Some t ->
      fail ~field:"token" ~value:t ~accepted:"end of input"
        "trailing input after the specification"
  | None -> ());
  result

let parse_result input =
  match parse_exn input with
  | v -> Ok v
  | exception Guard.Error.Error e ->
      Error { e with Guard.Error.input = Some input }

let parse input =
  match parse_result input with
  | Ok v -> v
  | Error e -> raise (Parse_error (Guard.Error.to_string e))

let to_string load =
  Epoch.epochs load
  |> List.map (function
       | Epoch.Job { current; duration } -> Printf.sprintf "job %g %g" current duration
       | Epoch.Idle d -> Printf.sprintf "idle %g" d)
  |> String.concat "; "
