(** The paper's integer load encoding (§4.1, Table 1).

    A load is imported into the TA-KiBaM as three equal-length arrays:

    - [load_time.(y)] — absolute time (in time steps) at which epoch [y]
      ends; strictly increasing;
    - [cur_times.(y)] — number of time steps it takes to draw [cur.(y)]
      charge units during epoch [y];
    - [cur.(y)] — charge units drawn per [cur_times.(y)] steps
      (0 for idle epochs),

    so the epoch current is [I_y = cur.(y)·Γ / (cur_times.(y)·T)]
    (paper eq. (7)).  These arrays are produced by "an external program"
    in the paper; this module (and the [loadgen] binary wrapping it) is
    that program. *)

type t = private {
  load_time : int array;
  cur_times : int array;
  cur : int array;
  time_step : float;  (** the T this encoding was produced for *)
  charge_unit : float;  (** the Γ this encoding was produced for *)
}

exception Not_representable of string
(** Raised when an epoch's current admits no exact small-integer
    [cur/cur_times] encoding, or an epoch boundary does not fall on the
    time grid (within 1e-6 of a step). *)

val make : time_step:float -> charge_unit:float -> Epoch.t -> t
(** [make ~time_step ~charge_unit load] encodes [load].  The ratio
    [I·T/Γ] of each job is converted to the smallest exact fraction
    [cur/cur_times] with [cur_times <= 10_000] (continued-fraction
    expansion); idle epochs get [cur = 0] and [cur_times] equal to the
    epoch length.  Raises {!Not_representable} when exactness is
    impossible. *)

val make_result :
  ?input:string ->
  time_step:float ->
  charge_unit:float ->
  Epoch.t ->
  (t, Guard.Error.t) result
(** [make] with structured errors instead of exceptions: bad
    discretization constants and non-representable loads come back as
    a {!Guard.Error.t} naming the offending field and the accepted
    range; [input] (e.g. the spec string or file name) is attached for
    the message.  What the CLI uses. *)

val epoch_count : t -> int

val current : t -> int -> float
(** Recover epoch [y]'s current from eq. (7) — inverse of the encoding,
    used as a round-trip test. *)

val epoch_steps : t -> int -> int
(** Length of epoch [y] in time steps. *)

val validate : t -> unit
(** Check the §4.1 invariants (strict monotonicity of [load_time],
    positive [cur_times], non-negative [cur]); raises [Invalid_argument]
    on violation.  Exposed because arrays can also be built by hand in
    tests. *)

val of_arrays :
  time_step:float ->
  charge_unit:float ->
  load_time:int array ->
  cur_times:int array ->
  cur:int array ->
  t
(** Trusted-ish constructor running {!validate}. *)

val check_compatible : t -> time_step:float -> charge_unit:float -> unit
(** Raise [Invalid_argument] unless the encoding was produced for these
    discretization constants — every engine calls this, so a load encoded
    at one Γ can never be silently replayed at another. *)

val pp : Format.formatter -> t -> unit
