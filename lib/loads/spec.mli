(** A tiny textual language for load specifications.

    Lets loads travel through CLI flags and files instead of OCaml code —
    [loadgen --spec "..."] and test fixtures use it.  Grammar (tokens are
    whitespace-separated; [;] separates items):

    {v
    spec   ::= item (';' item)*
    item   ::= 'job' AMPS MINUTES      one job epoch
             | 'idle' MINUTES          one idle epoch
             | 'repeat' N '(' spec ')' the bracketed spec, N times
             | LOADNAME                a named test load, e.g. ils_alt
    v}

    Examples:
    - ["job 0.5 1; idle 1; job 0.25 1; idle 1"] — one ILs-alt period;
    - ["repeat 40 (job 0.5 1; idle 1)"] — 80 minutes of ILs 500;
    - ["ils_alt"] — the built-in test load at its default horizon. *)

exception Parse_error of string
(** Carries a human-readable message with the offending token. *)

val parse_result : string -> (Epoch.t, Guard.Error.t) result
(** Parse with a structured error: the spec string as the input, the
    offending field or token, its value, and the accepted shape — what
    the CLI prints (doc/ROBUSTNESS.md's error taxonomy). *)

val parse : string -> Epoch.t
(** [parse_result], raising {!Parse_error} with the rendered error on
    malformed input (compatibility entry point). *)

val to_string : Epoch.t -> string
(** Render a load back into the language ([parse (to_string l)] equals
    [l] up to idle merging). *)
