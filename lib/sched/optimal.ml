type objective = Max_lifetime | Min_stranded | Min_lifetime

(* Observability (lib/obs).  The integer counters are synced from the
   search's own [stats] refs at the moment the stats snapshot is taken,
   so the reported Obs counters are bit-equal to [result.stats] by
   construction (asserted in the test suite); only the depth histogram
   and the spans are recorded in-loop, behind the enabled flag. *)
let c_positions = Obs.counter "optimal.positions"
let c_segments = Obs.counter "optimal.segments"
let c_memo_hits = Obs.counter "optimal.memo_hits"
let c_memo_misses = Obs.counter "optimal.memo_misses"
let c_bound_cuts = Obs.counter "optimal.bound_cuts"
let c_searches = Obs.counter "optimal.searches"
let c_exhausted = Obs.counter "optimal.budget_exhausted"
let h_depth = Obs.histogram "optimal.depth"
let s_search = Obs.span "optimal.search"
let s_branch = Obs.span "optimal.branch"

type fallback = Search_prefix | Policy_floor

type exhaustion = { trip : Guard.Budget.trip; fallback : fallback }

type status = Optimal | Budget_exhausted of exhaustion

type checkpoint = { path : string; every_segments : int; resume : bool }

let checkpoint ?(every_segments = 65_536) ?(resume = false) path =
  if every_segments < 1 then
    invalid_arg "Sched.Optimal.checkpoint: every_segments >= 1";
  { path; every_segments; resume }

type result = {
  lifetime_steps : int;
  stranded_units : int;
  schedule : int array;
  status : status;
  stats : stats;
}

and stats = {
  positions_explored : int;
  segments_run : int;
  pruned : int;
  bound_cuts : int;
}

exception Load_too_short

type pos = {
  y : int;  (** job epoch index where serving (re)starts *)
  local : int;  (** offset into epoch [y] *)
  bank : Bank.t;
}

type seg_outcome =
  | Terminal of (int * int)  (* death step, stranded units *)
  | Next of pos
  | Exhausted

(* Advance from the start of epoch [y] through idle epochs to the next job
   epoch; batteries recover along the way.  Mutates [bank]. *)
let rec advance_to_job cursor y bank =
  if y >= Loads.Cursor.epoch_count cursor then Exhausted
  else if not (Loads.Cursor.is_idle cursor y) then Next { y; local = 0; bank }
  else begin
    Bank.tick_all bank (Loads.Cursor.epoch_len cursor y);
    advance_to_job cursor (y + 1) bank
  end

(* Serve epoch [pos.y] from [pos.local] with battery [b]; deterministic up
   to the next decision point.  [skip_final] elides the draw that falls
   exactly on the epoch's last step — the go_off/use_charge race the
   published TA leaves open (see mli); the cursor folds it into the
   schedule. *)
let run_segment cursor ~switch_delay ~skip_final pos b =
  let y = pos.y in
  let len = Loads.Cursor.epoch_len cursor y in
  let start = Loads.Cursor.epoch_start cursor y in
  let bank = Bank.copy pos.bank in
  let sch = Loads.Cursor.schedule_from ~skip_final cursor y ~local:pos.local in
  match Bank.serve bank ~b sch with
  | Bank.Completed -> advance_to_job cursor (y + 1) bank
  | Bank.Died off ->
      let next = pos.local + off in
      let death_step = start + next in
      if Bank.all_dead bank then Terminal (death_step, Bank.stranded bank)
      else begin
        let resume = next + switch_delay in
        if resume < len then begin
          Bank.tick_all bank switch_delay;
          Next { y; local = resume; bank }
        end
        else begin
          Bank.tick_all bank (len - next);
          advance_to_job cursor (y + 1) bank
        end
      end

(* Canonical memo key: decision point plus the multiset of battery states
   (identical cells make schedules confluent up to battery renaming). *)
module Key = struct
  type t = int array

  let equal = ( = )

  let hash (a : t) =
    let h = ref 0x3bf29ce484222325 in
    Array.iter (fun v -> h := (!h lxor v) * 0x100000001b3 land max_int) a;
    !h

  let of_pos (p : pos) =
    let n = Bank.size p.bank in
    let cells =
      Array.init n (fun i ->
          let b = Bank.battery p.bank i in
          ( b.Dkibam.Battery.n_gamma,
            b.Dkibam.Battery.m_delta,
            b.Dkibam.Battery.recov_clock,
            Bank.is_dead p.bank i ))
    in
    Array.sort compare cells;
    let key = Array.make (2 + (4 * n)) 0 in
    key.(0) <- p.y;
    key.(1) <- p.local;
    Array.iteri
      (fun i (n_gamma, m_delta, clock, d) ->
        key.(2 + (4 * i)) <- n_gamma;
        key.(3 + (4 * i)) <- m_delta;
        key.(4 + (4 * i)) <- clock;
        key.(5 + (4 * i)) <- (if d then 1 else 0))
      cells;
    key
end

module Tbl = Hashtbl.Make (Key)

(* Checkpoint framing (Guard.Checkpoint does the atomic write and the
   checksum; see doc/ROBUSTNESS.md).  The fingerprint digests every
   input the memo values depend on, so a snapshot from a different
   load, pack or objective is refused instead of silently poisoning a
   resumed search — memo entries are exact subtree values, but only
   for the inputs that produced them. *)
let memo_magic = "sched.optimal.memo.v2"

(* Bounds default to on; the environment switch lets `dune runtest` and
   A/B comparisons exercise the unpruned search without touching every
   call site (the CLI's --no-bounds passes [~bounds:false] explicitly). *)
let bounds_default () =
  match Sys.getenv_opt "BATSCHED_NO_BOUNDS" with
  | None | Some "" -> true
  | Some _ -> false

let fingerprint ~switch_delay ~objective ~allow_final_draw_skip ~initial
    ~n_batteries disc load =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( disc,
            load,
            n_batteries,
            switch_delay,
            objective,
            allow_final_draw_skip,
            initial )
          []))

let search ?pool ?budget ?checkpoint ?shared ?(switch_delay = 1)
    ?(objective = Max_lifetime) ?bounds ?(allow_final_draw_skip = false)
    ?initial ~n_batteries (disc : Dkibam.Discretization.t)
    (load : Loads.Arrays.t) =
  (match initial with
  | Some a when Array.length a <> n_batteries ->
      invalid_arg "Sched.Optimal.search: initial length mismatch"
  | _ -> ());
  if n_batteries < 1 then invalid_arg "Sched.Optimal.search: need >= 1 battery";
  Loads.Arrays.check_compatible load ~time_step:disc.time_step
    ~charge_unit:disc.charge_unit;
  Obs.incr c_searches;
  Obs.time s_search @@ fun () ->
  let cursor = Loads.Cursor.make load in
  let score (step, stranded_units) =
    match objective with
    | Max_lifetime -> step
    | Min_stranded -> -stranded_units
    | Min_lifetime -> -step
  in
  let bounds_on = match bounds with Some b -> b | None -> bounds_default () in
  let bound =
    if bounds_on then
      Some (Bound.create ~switch_delay ~allow_final_draw_skip disc cursor)
    else None
  in
  (* Objective-specific admissible upper bound on [score] at a position;
     [None] when the bound cannot cut — in particular whenever some
     continuation might outlive the load, because a pruned subtree must
     be provably free of [Load_too_short]. *)
  let score_ub bd (p : pos) =
    let ub = Bound.lifetime_ub bd ~y:p.y ~local:p.local p.bank in
    if ub >= Bound.infinite then None
    else
      match objective with
      | Max_lifetime -> Some ub
      | Min_stranded ->
          Some (-Bound.stranded_lb bd ~y:p.y ~local:p.local p.bank)
      | Min_lifetime ->
          let lb = Bound.lifetime_lb bd ~y:p.y ~local:p.local p.bank in
          if lb >= Bound.infinite then None else Some (-lb)
  in
  (* Achievable floor on a node's value: every continuation that dies
     scores at least this much, so seeding [best] with it keeps the
     stored maximum exact while letting dominated children be cut before
     any of them is explored. *)
  let seed_score (p : pos) =
    match bound with
    | None -> min_int
    | Some bd -> (
        match objective with
        | Max_lifetime ->
            let lb = Bound.lifetime_lb bd ~y:p.y ~local:p.local p.bank in
            if lb >= Bound.infinite then min_int else lb
        | Min_lifetime ->
            let ub = Bound.lifetime_ub bd ~y:p.y ~local:p.local p.bank in
            if ub >= Bound.infinite then min_int else -ub
        | Min_stranded -> min_int)
  in
  let memo : int Tbl.t = Tbl.create 4096 in
  let segments = ref 0
  and pruned = ref 0
  and misses = ref 0
  and cuts = ref 0 in
  (* Budget hooks.  [armed] is cleared once the search phase ends so the
     replay below (all memo hits) and the floor fallback can never trip;
     with no budget both hooks are no-ops and the search is bit-identical
     to the unbudgeted one. *)
  let armed = ref true in
  let charge () =
    match budget with
    | Some b when !armed -> Guard.Budget.charge_segment_exn b
    | _ -> ()
  in
  let note_position () =
    match budget with
    | Some b when !armed ->
        Guard.Budget.note_positions b 1;
        Guard.Budget.check_exn b
    | _ -> ()
  in
  (* Checkpointing (serial search only — [?pool] is ignored when a
     checkpoint is given).  Snapshots only ever contain fully-solved
     positions: an entry reaches [memo] after its whole subtree has been
     evaluated, so a snapshot taken mid-search — or left behind by a
     killed process — preloads as a pure cache and the resumed search
     returns the same lifetime, stranded charge and schedule as an
     uninterrupted run. *)
  let fp =
    lazy
      (fingerprint ~switch_delay ~objective ~allow_final_draw_skip ~initial
         ~n_batteries disc load)
  in
  let ckpt_save () =
    match checkpoint with
    | None -> ()
    | Some ck ->
        let entries = Tbl.fold (fun k v acc -> (k, v) :: acc) memo [] in
        (* the flag is informational: entries are exact subtree values in
           both modes, so a snapshot resumes soundly across modes and the
           fingerprint deliberately excludes it *)
        let payload =
          Marshal.to_string
            ((bounds_on, Array.of_list entries) : bool * (Key.t * int) array)
            []
        in
        Guard.Checkpoint.save ~path:ck.path ~magic:memo_magic
          ~fingerprint:(Lazy.force fp) payload
  in
  let last_ckpt = ref 0 in
  let maybe_ckpt () =
    match checkpoint with
    | Some ck when !segments - !last_ckpt >= ck.every_segments ->
        last_ckpt := !segments;
        ckpt_save ()
    | _ -> ()
  in
  (match checkpoint with
  | Some ck when ck.resume -> (
      match
        Guard.Checkpoint.load ~path:ck.path ~magic:memo_magic
          ~fingerprint:(Lazy.force fp)
      with
      | Ok payload ->
          let (_saved_with_bounds : bool), (entries : (Key.t * int) array) =
            Marshal.from_string payload 0
          in
          Array.iter (fun (k, v) -> Tbl.replace memo k v) entries
      | Error Guard.Checkpoint.Missing -> ()
      | Error (Guard.Checkpoint.Bad e) -> Guard.Error.raise_exn e)
  | _ -> ());
  (* Cross-request shared store (Sched.Memo): lookups fall through the
     local table to the shared one (copying hits local, so the shared
     shard lock is taken once per distinct position); stores publish to
     both.  The scope fingerprint digests every input the values depend
     on, so entries never leak across loads, packs or objectives; the
     values themselves are exact, so warmth changes the work, never the
     result — bit-identity cold/warm/evicted is asserted in
     test/test_memo.ml.  Safe from concurrent searches on any domain
     (Memo is sharded + locked; the local table stays private). *)
  let shared_scope =
    Option.map
      (fun m -> Memo.scope m ~fingerprint:("search|" ^ Lazy.force fp))
      shared
  in
  let find_memo tbl key =
    match Tbl.find_opt tbl key with
    | Some _ as v -> v
    | None -> (
        match shared_scope with
        | None -> None
        | Some s -> (
            match Memo.find s key with
            | Some v ->
                Tbl.replace tbl key v;
                Some v
            | None -> None))
  in
  let store_memo tbl key v =
    Tbl.replace tbl key v;
    match shared_scope with Some s -> Memo.add s key v | None -> ()
  in
  let skip_options = if allow_final_draw_skip then [ false; true ] else [ false ] in
  let choices (p : pos) =
    List.concat_map
      (fun b -> List.map (fun sk -> (b, sk)) skip_options)
      (Bank.alive p.bank)
  in
  (* The recursive exact value of a position, memoized in [memo] with
     hit/miss/segment counters [pruned]/[misses]/[segments].
     Parameterized over the table so that parallel root branches can
     each own one.  [depth] counts decisions from the root and only
     feeds the observability histogram. *)
  let rec value_in memo segments pruned misses cuts ~depth (p : pos) =
    let key = Key.of_pos p in
    match find_memo memo key with
    | Some v ->
        incr pruned;
        v
    | None ->
        incr misses;
        note_position ();
        Obs.observe h_depth depth;
        maybe_ckpt ();
        let best = ref (seed_score p) in
        List.iter
          (fun (b, skip_final) ->
            incr segments;
            charge ();
            match run_segment cursor ~switch_delay ~skip_final p b with
            | Terminal t -> if score t > !best then best := score t
            | Next p' -> (
                (* memoized children are looked up before the bound check
                   so hit/miss counts match the unpruned search exactly *)
                match find_memo memo (Key.of_pos p') with
                | Some v ->
                    incr pruned;
                    if v > !best then best := v
                | None ->
                    let cut =
                      match bound with
                      | Some bd -> (
                          match score_ub bd p' with
                          | Some ub -> ub <= !best
                          | None -> false)
                      | None -> false
                    in
                    if cut then incr cuts
                    else
                      let v =
                        value_in memo segments pruned misses cuts
                          ~depth:(depth + 1) p'
                      in
                      if v > !best then best := v)
            | Exhausted -> raise Load_too_short)
          (choices p);
        (* a decision point always has at least one alive battery *)
        assert (!best > min_int);
        store_memo memo key !best;
        !best
  in
  let value p = value_in memo segments pruned misses cuts ~depth:0 p in
  let root =
    match advance_to_job cursor 0 (Bank.create ?initial ~n_batteries disc) with
    | Next p -> p
    | Exhausted -> raise Load_too_short
    | Terminal _ -> assert false
  in
  (* Root evaluation.  Both paths go one first-decision branch at a
     time, so that on budget exhaustion every branch completed so far
     is a fully-memoized, exact subtree — the anytime result below
     replays the best of them.  [completed] collects (choice, value) in
     evaluation order; [trip_info] latches the first budget trip. *)
  let root_choices = choices root in
  let completed = ref [] in
  let trip_info = ref None in
  (* Incumbent: one best-of-two policy run — the same floor the anytime
     fallback uses — scores a schedule that is a path of this very tree,
     so its score never exceeds the true optimum and seeding the root
     [best] with it is exact.  Only computed with bounds on: with bounds
     off nothing could consume it and the search must reproduce the
     historical unpruned behaviour segment for segment. *)
  let incumbent_floor =
    match bound with
    | None -> min_int
    | Some _ -> (
        let o =
          Simulator.simulate ?initial ~switch_delay ~n_batteries
            ~policy:Policy.Best_of disc load
        in
        match o.Simulator.lifetime_steps with
        | None -> min_int
        | Some steps -> score (steps, Bank.stranded_units o.Simulator.final))
  in
  let eval_serial () =
    match find_memo memo (Key.of_pos root) with
    | Some _ -> incr pruned
    | None ->
        incr misses;
        Obs.observe h_depth 0;
        (* the position note goes inside the try: a budget shared
           across searches may already be tripped on entry, and that
           must surface as an anytime status, not an exception *)
        (try
           note_position ();
           let best = ref incumbent_floor in
           List.iter
             (fun ((b, skip_final) as c) ->
               incr segments;
               charge ();
               match run_segment cursor ~switch_delay ~skip_final root b with
               | Terminal t ->
                   completed := (c, score t) :: !completed;
                   if score t > !best then best := score t
               | Next p' -> (
                   match find_memo memo (Key.of_pos p') with
                   | Some v ->
                       incr pruned;
                       completed := (c, v) :: !completed;
                       if v > !best then best := v
                   | None ->
                       let cut =
                         match bound with
                         | Some bd -> (
                             match score_ub bd p' with
                             | Some ub -> ub <= !best
                             | None -> false)
                         | None -> false
                       in
                       if cut then incr cuts
                       else begin
                         let v =
                           value_in memo segments pruned misses cuts ~depth:1
                             p'
                         in
                         completed := (c, v) :: !completed;
                         if v > !best then best := v
                       end)
               | Exhausted -> raise Load_too_short)
             root_choices
         with Guard.Budget.Tripped r -> trip_info := Some r);
        if !trip_info = None then begin
          let best =
            List.fold_left (fun acc (_, v) -> max acc v) incumbent_floor
              !completed
          in
          (* a decision point always has at least one alive battery *)
          assert (best > min_int);
          store_memo memo (Key.of_pos root) best
        end
  in
  (* Root fan-out: each first decision is searched in its own domain
     with a private memo table (values are exact, so any table agrees
     with any other on shared keys), then the tables are merged into
     [memo] and the root entry derived from the branch values.  The
     replay below then runs against the merged table and reproduces the
     serial schedule exactly — branch values are the same integers the
     serial search computes.  A shared budget stops all branches: the
     first trip latches the budget's cancel token, and every sibling
     unwinds at its next charge; tripped branches return [None], and
     their partial tables still merge — each entry is exact. *)
  let eval_pooled pool =
    let root_choices = Array.of_list root_choices in
    (* Branches prune against the up-front incumbent only — a fixed
       threshold every domain sees identically, so which branches are
       cut never depends on completion order.  A cut branch is settled
       (its value is provably <= the incumbent, which the root max
       already includes), so cuts count towards completion. *)
    let branch (b, skip_final) =
      let memo = Tbl.create 4096 in
      let segments = ref 0
      and pruned = ref 0
      and misses = ref 0
      and cuts = ref 0 in
      match
        (incr segments;
         charge ();
         match run_segment cursor ~switch_delay ~skip_final root b with
         | Terminal t -> `Value (score t)
         | Next p' ->
             let cut =
               match bound with
               | Some bd -> (
                   match score_ub bd p' with
                   | Some ub -> ub <= incumbent_floor
                   | None -> false)
               | None -> false
             in
             if cut then begin
               incr cuts;
               `Cut
             end
             else `Value (value_in memo segments pruned misses cuts ~depth:1 p')
         | Exhausted -> raise Load_too_short)
      with
      | outcome -> (outcome, memo, !segments, !pruned, !misses, !cuts)
      | exception Guard.Budget.Tripped _ ->
          (`Tripped, memo, !segments, !pruned, !misses, !cuts)
    in
    let branches =
      Exec.Pool.parallel_init ~chunk:1 pool (Array.length root_choices)
        (fun i -> Obs.time ~index:i s_branch (fun () -> branch root_choices.(i)))
    in
    let settled = ref 0 in
    Array.iteri
      (fun i (o, m, s, pr, mi, cu) ->
        segments := !segments + s;
        pruned := !pruned + pr;
        misses := !misses + mi;
        cuts := !cuts + cu;
        Tbl.iter (fun k v -> Tbl.replace memo k v) m;
        match o with
        | `Value v ->
            incr settled;
            completed := (root_choices.(i), v) :: !completed
        | `Cut -> incr settled
        | `Tripped -> ())
      branches;
    if !settled = Array.length root_choices then begin
      let best =
        List.fold_left (fun acc (_, v) -> max acc v) incumbent_floor !completed
      in
      store_memo memo (Key.of_pos root) best
    end
    else
      trip_info :=
        Some
          (match budget with
          | Some b -> (
              match Guard.Budget.tripped b with
              | Some r -> r
              | None -> Guard.Budget.Cancelled)
          | None -> Guard.Budget.Cancelled)
  in
  (* A checkpointed search runs serially: the snapshot cadence is tied
     to the one shared memo table. *)
  (match pool with
  | Some pool when checkpoint = None && List.length root_choices > 1 ->
      eval_pooled pool
  | _ -> eval_serial ());
  armed := false;
  (* Final snapshot: a completed run leaves a full-resume cache; a
     tripped run leaves every subtree it solved. *)
  ckpt_save ();
  (* Search-phase statistics, snapshotted before the replay below adds
     its own (all-hit) memo lookups.  The Obs counters are synced from
     the very same values, so [--stats] reports exactly [result.stats]
     plus the miss count. *)
  let stats =
    {
      positions_explored = Tbl.length memo;
      segments_run = !segments;
      pruned = !pruned;
      bound_cuts = !cuts;
    }
  in
  Obs.add c_positions stats.positions_explored;
  Obs.add c_segments stats.segments_run;
  Obs.add c_memo_hits stats.pruned;
  Obs.add c_memo_misses !misses;
  Obs.add c_bound_cuts stats.bound_cuts;
  (* Reconstruct one optimal schedule by replaying, at each position,
     the first choice whose exact value matches the position's own — the
     same selection the strict-argmax fold made before bounds existed.
     With bounds on, a child whose score upper bound falls strictly
     below the target cannot be that first match and is skipped without
     being evaluated; a child the search itself cut may have to be
     evaluated here (it memoizes as it goes, after the stats snapshot
     above and with the budget disarmed). *)
  let schedule = ref [] in
  let final = ref (0, 0) in
  let rec replay (p : pos) =
    let v_star = value p in
    let rec pick = function
      | [] -> assert false
      | (b, skip_final) :: rest -> (
          match run_segment cursor ~switch_delay ~skip_final p b with
          | Terminal t ->
              if score t = v_star then (b, None, Some t) else pick rest
          | Next p' ->
              let skip =
                match bound with
                | Some bd when not (Tbl.mem memo (Key.of_pos p')) -> (
                    match score_ub bd p' with
                    | Some ub -> ub < v_star
                    | None -> false)
                | _ -> false
              in
              if (not skip) && value p' = v_star then (b, Some p', None)
              else pick rest
          | Exhausted -> raise Load_too_short)
    in
    let b, next, terminal = pick (choices p) in
    schedule := b :: !schedule;
    match next with
    | Some p' -> replay p'
    | None -> ( match terminal with Some t -> final := t | None -> assert false)
  in
  match !trip_info with
  | None ->
      replay root;
      let lifetime_steps, stranded_units = !final in
      {
        lifetime_steps;
        stranded_units;
        schedule = Array.of_list (List.rev !schedule);
        status = Optimal;
        stats;
      }
  | Some trip -> (
      Obs.incr c_exhausted;
      (* Anytime degradation: the best fully-evaluated first-decision
         branch — an exact value, replayable to a feasible schedule
         from the memo — floored by one best-of-two policy simulation.
         Whichever scores better is returned; the budget never turns
         into an exception here. *)
      let floor_score, fl_steps, fl_stranded, fl_schedule =
        let o =
          Simulator.simulate ?initial ~switch_delay ~n_batteries
            ~policy:Policy.Best_of disc load
        in
        match o.Simulator.lifetime_steps with
        | None -> raise Load_too_short
        | Some steps ->
            let stranded = Bank.stranded_units o.Simulator.final in
            let schedule = Array.of_list (List.map snd o.Simulator.decisions) in
            (score (steps, stranded), steps, stranded, schedule)
      in
      let best_branch =
        List.fold_left
          (fun acc (c, v) ->
            match acc with
            | Some (_, bv) when bv >= v -> acc
            | _ -> Some (c, v))
          None (List.rev !completed)
      in
      match best_branch with
      | Some ((b0, sk0), v) when v >= floor_score ->
          schedule := [ b0 ];
          (match run_segment cursor ~switch_delay ~skip_final:sk0 root b0 with
          | Terminal t -> final := t
          | Next p1 -> replay p1
          | Exhausted -> raise Load_too_short);
          let lifetime_steps, stranded_units = !final in
          {
            lifetime_steps;
            stranded_units;
            schedule = Array.of_list (List.rev !schedule);
            status = Budget_exhausted { trip; fallback = Search_prefix };
            stats;
          }
      | _ ->
          {
            lifetime_steps = fl_steps;
            stranded_units = fl_stranded;
            schedule = fl_schedule;
            status = Budget_exhausted { trip; fallback = Policy_floor };
            stats;
          })

let lifetime ?pool ?budget ?switch_delay ?objective ?bounds
    ?allow_final_draw_skip ?initial ~n_batteries disc load =
  Dkibam.Discretization.minutes_of_steps disc
    (search ?pool ?budget ?switch_delay ?objective ?bounds
       ?allow_final_draw_skip ?initial ~n_batteries disc load)
      .lifetime_steps

(* ------------------------------------------------------------------ *)
(* Suffix planning with a terminal bound — the Horizon policy's core   *)
(* ------------------------------------------------------------------ *)

type planner = {
  p_cursor : Loads.Cursor.t;
  p_bound : Bound.t;
  p_bounds_on : bool;
  p_switch_delay : int;
  (* Memo entries are exact window values; the frontier epoch is part of
     the key because the same position has a different value under a
     different window.  Successive plans at the same frontier (mid-job
     replans, and every plan once the window covers the whole load)
     therefore share subtrees across decisions. *)
  p_memo : int Tbl.t;
  (* Cross-planner shared store: window values under the same scope
     fingerprint (load + pack + switch delay) are exact, so re-plans
     from different requests — and different worker domains — reuse
     each other's subtrees.  Lookup falls through the private table;
     stores publish to both. *)
  p_shared : Memo.scope option;
}

type plan = { plan_choice : int; plan_value : int }

let planner ?(switch_delay = 1) ?bounds ?shared (disc : Dkibam.Discretization.t)
    (cursor : Loads.Cursor.t) =
  let bounds_on = match bounds with Some b -> b | None -> bounds_default () in
  {
    p_cursor = cursor;
    p_bound =
      Bound.create ~switch_delay ~allow_final_draw_skip:false disc cursor;
    p_bounds_on = bounds_on;
    p_switch_delay = switch_delay;
    p_memo = Tbl.create 1024;
    p_shared = shared;
  }

let plan ?budget t ~frontier_epoch ~y ~local bank =
  let cursor = t.p_cursor and bd = t.p_bound in
  let switch_delay = t.p_switch_delay in
  if y < 0 || y >= Loads.Cursor.epoch_count cursor then
    invalid_arg "Sched.Optimal.plan: y out of range";
  if local < 0 || local >= Loads.Cursor.epoch_len cursor y then
    invalid_arg "Sched.Optimal.plan: local out of range";
  if Bank.alive bank = [] then
    invalid_arg "Sched.Optimal.plan: no battery alive";
  let charge () =
    match budget with
    | Some b -> Guard.Budget.charge_segment_exn b
    | None -> ()
  in
  (* Admissible terminal value at the window frontier: the pooled-recovery
     lower bound — every continuation from the frontier survives to at
     least this step ([Bound.infinite]: none can die within the load). *)
  let terminal (p : pos) = Bound.lifetime_lb bd ~y:p.y ~local:p.local p.bank in
  let key_of (p : pos) =
    let k = Key.of_pos p in
    let key = Array.make (Array.length k + 1) frontier_epoch in
    Array.blit k 0 key 1 (Array.length k);
    key
  in
  (* Certified value of a position inside the window: max over battery
     choices of (death step | terminal bound at the frontier |
     [Bound.infinite] when the load ends first).  Every value is a death
     step some continuation is proven to reach — committing the argmax
     is therefore well-founded.  Cuts drop children whose lifetime upper
     bound cannot beat an already-achieved sibling value: the dropped
     child's window value is [<= ub <= best], so the stored max — and,
     because [best] only ever grows along the first-max fold, the argmax
     committed at the root — are unchanged (the bit-identity argument of
     [search], replayed here). *)
  let lookup key =
    match Tbl.find_opt t.p_memo key with
    | Some _ as v -> v
    | None -> (
        match t.p_shared with
        | None -> None
        | Some s -> (
            match Memo.find s key with
            | Some v ->
                Tbl.replace t.p_memo key v;
                Some v
            | None -> None))
  in
  let store key v =
    Tbl.replace t.p_memo key v;
    match t.p_shared with Some s -> Memo.add s key v | None -> ()
  in
  let rec value (p : pos) =
    let key = key_of p in
    match lookup key with
    | Some v -> v
    | None ->
        let best = ref min_int in
        List.iter
          (fun b ->
            let v = child !best p b in
            if v > !best then best := v)
          (Bank.alive p.bank);
        store key !best;
        !best
  and child best (p : pos) b =
    charge ();
    match run_segment cursor ~switch_delay ~skip_final:false p b with
    | Terminal (step, _) -> step
    | Exhausted -> Bound.infinite
    | Next p' -> (
        if p'.y >= frontier_epoch then terminal p'
        else
          (* memoized children — local or shared — are looked up before
             the bound check, exactly as [search] does *)
          match lookup (key_of p') with
          | Some v -> v
          | None ->
              if
                t.p_bounds_on
                &&
                let ub = Bound.lifetime_ub bd ~y:p'.y ~local:p'.local p'.bank in
                ub < Bound.infinite && ub <= best
              then min_int
              else value p')
  in
  let root = { y; local; bank } in
  match
    let best_b = ref (-1) and best_v = ref min_int in
    List.iter
      (fun b ->
        let v = child !best_v root b in
        if v > !best_v then begin
          best_v := v;
          best_b := b
        end)
      (Bank.alive bank);
    store (key_of root) !best_v;
    { plan_choice = !best_b; plan_value = !best_v }
  with
  | p -> Some p
  | exception Guard.Budget.Tripped _ -> None

let lookahead_policy ?(switch_delay = 1) ?(allow_final_draw_skip = false)
    ~depth (disc : Dkibam.Discretization.t) (load : Loads.Arrays.t) =
  if depth < 1 then invalid_arg "Sched.Optimal.lookahead_policy: depth >= 1";
  Loads.Arrays.check_compatible load ~time_step:disc.time_step
    ~charge_unit:disc.charge_unit;
  let cursor = Loads.Cursor.make load in
  let skip_options = if allow_final_draw_skip then [ false; true ] else [ false ] in
  (* score of continuing from [p] with [d] decisions of lookahead left:
     (died?, death step or frontier charge) encoded so that later deaths
     beat earlier ones and any survivor beats every death.  The frontier
     score is the remaining available charge over alive batteries. *)
  let survivor_bonus = 1 lsl 40 in
  let rec value d (p : pos) =
    if d = 0 then survivor_bonus + Bank.alive_available_milli p.bank
    else begin
      let best = ref min_int in
      List.iter
        (fun b ->
          List.iter
            (fun skip_final ->
              let v =
                match run_segment cursor ~switch_delay ~skip_final p b with
                | Terminal (step, _) -> step
                | Next p' -> value (d - 1) p'
                | Exhausted ->
                    (* outliving the load is the best possible outcome *)
                    survivor_bonus * 2
              in
              if v > !best then best := v)
            skip_options)
        (Bank.alive p.bank);
      !best
    end
  in
  let decide (ctx : Policy.decision_context) =
    let epoch_start_step = Loads.Cursor.epoch_start cursor ctx.epoch_index in
    (* at a mid-job hand-over the simulator applies the switch delay
       after consulting the policy: model the continuation from the
       post-delay state *)
    let delay = if ctx.mid_job then switch_delay else 0 in
    let p =
      {
        y = ctx.epoch_index;
        local = ctx.step - epoch_start_step + delay;
        bank =
          Bank.of_parts disc
            ~batteries:
              (Array.map (fun b -> Dkibam.Battery.tick_many disc delay b)
                 ctx.batteries)
            ~dead:
              (Array.init (Array.length ctx.batteries) (fun i ->
                   not (List.mem i ctx.alive)));
      }
    in
    let scored =
      List.map
        (fun b ->
          let v =
            List.fold_left
              (fun acc skip_final ->
                let v =
                  match run_segment cursor ~switch_delay ~skip_final p b with
                  | Terminal (step, _) -> step
                  | Next p' -> value (depth - 1) p'
                  | Exhausted -> survivor_bonus * 2
                in
                max acc v)
              min_int skip_options
          in
          (b, v))
        ctx.alive
    in
    fst
      (List.fold_left
         (fun (bb, bv) (b, v) -> if v > bv then (b, v) else (bb, bv))
         (-1, min_int) scored)
  in
  Policy.Custom decide
