(** Receding-horizon scheduling: near-optimal decisions at simulator
    cost (doc/PLANNING.md).

    Between the fixed heuristics ({!Policy.Best_of} and friends) and the
    exhaustive {!Optimal.search} — which is exact but blows up past ~60
    jobs — sits the classic planning compromise (Fox, Long & Magazzeni's
    plan-based battery policies): at every scheduling point, search the
    next [k] jobs {e exactly} with the {!Optimal.plan} machinery
    (memoization + {!Bound} branch-and-bound over the truncated load
    suffix), score the window frontier with the admissible
    pooled-recovery lower bound {!Bound.lifetime_lb}, commit only the
    first battery assignment, and re-plan at the next decision point.
    Because the terminal value is a {e lower} bound, every committed
    choice carries a survival certificate — the policy never chases an
    outcome the physics cannot deliver — and with [k >=] the number of
    jobs the window covers the whole load, making the policy bit-identical
    to the exact search (asserted over the Table 5 loads in
    [test/test_horizon.ml]).

    The returned value is an ordinary {!Policy.Custom}, so it composes
    with everything that takes a policy: {!Simulator.simulate} consults
    it per decision, {!Simulator.run_batch} lanes fall back to the
    scalar path for it, and {!Ensemble.run} ([?extra_policies]) and
    {!Montecarlo.run} ([?policies]) accept it by name.  It is
    load-agnostic — planning state is built per run from the
    {!Policy.decision_context}'s cursor and cached in domain-local
    storage (no locks, no cross-run reuse), so one policy value can
    serve a whole Monte Carlo fleet deterministically at any [--jobs].

    Observability: with [Obs] enabled, [horizon.plans] counts lookahead
    searches, [horizon.replans] the mid-job subset (deaths force an
    unscheduled re-plan), and [horizon.budget_trips] the plans answered
    by the fallback heuristic; see doc/OBSERVABILITY.md. *)

type fallback =
  | Best_of
      (** answer a budget-tripped decision with {!Policy.best_of} — the
          fullest alive battery (the default) *)
  | Round_robin
      (** answer it with the cyclic choice derived from the job index
          alone — stateless, so deterministic across lanes and pools *)

val policy :
  ?switch_delay:int ->
  ?bounds:bool ->
  ?shared:Memo.scope ->
  ?budget_segments:int ->
  ?fallback:fallback ->
  k:int ->
  unit ->
  Policy.t
(** [policy ~k ()]: plan [k >= 1] jobs ahead at every scheduling point.
    [switch_delay] must match the simulation it runs under (default 1,
    as everywhere).  [bounds] arms the in-window branch-and-bound cuts
    (default: on unless [BATSCHED_NO_BOUNDS] is set); decisions are
    bit-identical either way.  [shared] backs the per-run planner memo
    with a process-wide {!Memo} scope (see {!Optimal.planner}) — window
    values are exact, so warmth from other runs or domains changes only
    the work, never a decision; the caller must fingerprint the scope
    on everything that shapes the values (load, battery, switch delay),
    as the daemon does.  [budget_segments] caps the work of each
    single decision ([Guard.Budget], one unit per simulated segment) —
    a segment-count cap trips at deterministic points, so the fallback
    decisions are reproducible bit-for-bit {e given the same memo
    warmth}; on a trip the decision falls back to [fallback].  The
    policy raises [Invalid_argument] under a driver that supplies no
    load cursor (see {!Policy.decision_context}). *)

val name : ?budget_segments:int -> k:int -> unit -> string
(** Display label for reports and benches: ["horizon-3"],
    ["horizon-3(budget 500)"]. *)
