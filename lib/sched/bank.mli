(** A bank of dKiBaM batteries — the stateful half of the discharge
    kernel.

    Encapsulates the [batteries]/[dead] array pair that the simulator,
    the optimal search and the analysis layer all used to maintain by
    hand: concurrent recovery ([tick_all]), the fatal-draw observation
    rule of paper eq. (8) ([draw_from]), death bookkeeping, and the
    canonical serving loop over a {!Loads.Cursor.schedule} ([serve]).
    Banks are mutable; the optimal search snapshots them with {!copy}
    at every branch point. *)

type t

val create :
  ?initial:Dkibam.Battery.t array ->
  n_batteries:int ->
  Dkibam.Discretization.t ->
  t
(** [initial] defaults to [n_batteries] full batteries; its length must
    equal [n_batteries].  The array is copied. *)

val of_parts :
  Dkibam.Discretization.t ->
  batteries:Dkibam.Battery.t array ->
  dead:bool array ->
  t
(** Re-assemble a bank from explicit state (both arrays are copied);
    lengths must agree. *)

val copy : t -> t
val disc : t -> Dkibam.Discretization.t
val size : t -> int
val battery : t -> int -> Dkibam.Battery.t

val snapshot : t -> Dkibam.Battery.t array
(** A fresh copy of the battery states, by id. *)

val is_dead : t -> int -> bool

val alive : t -> int list
(** Ids not yet observed empty, ascending. *)

val any_alive : t -> bool
val all_dead : t -> bool

val tick_all : t -> int -> unit
(** Advance every battery (dead ones keep recovering, paper §4.3) by
    [k] steps of pure recovery. *)

val draw_from : t -> int -> cur:int -> bool
(** [draw_from t b ~cur]: battery [b] serves one draw of [cur] units.
    Returns [true] — and marks [b] dead — when the draw is fatal: the
    battery either lacks the charge units or satisfies the emptiness
    test of eq. (8) immediately after the draw. *)

val stranded : t -> int
(** Total charge units still held across the bank ([sum n_gamma]). *)

val stranded_units : Dkibam.Battery.t array -> int
(** Same, over a bare battery array (e.g. a simulator outcome). *)

val alive_available_milli : t -> int
(** Available charge (milli-units) summed over alive batteries — the
    frontier heuristic of bounded-lookahead search. *)

(** {2 The serving loop} *)

type serve_outcome =
  | Completed  (** the span was served to its end, trailing rest included *)
  | Died of int
      (** the serving battery was observed empty at the draw landing this
          many steps after the span's first step; the trailing steps have
          {e not} been ticked — hand-over timing is the driver's call *)

val serve :
  ?tick:(int -> unit) -> t -> b:int -> Loads.Cursor.schedule -> serve_outcome
(** [serve t ~b sch]: battery [b] serves the span described by [sch] —
    for each scheduled draw, [tick] the whole bank [sch.ct] steps and
    apply {!draw_from}; after the last draw, [tick] the trailing
    [sch.rest].  [tick] defaults to {!tick_all} and is overridable so a
    driver can interleave trace sampling with the same semantics. *)
