(** Optimal battery scheduling by exhaustive search (the Cora role).

    Computes the schedule that maximizes system lifetime for a given load
    — the "optimal" column of the paper's Table 5.  The search exploits
    the paper's own observation (§4.4) that the TA-KiBaM is fully
    deterministic between scheduling points: from each decision point
    (job start, or mid-job hand-over after a battery death) and battery
    choice, the system evolves deterministically to the next decision
    point, so the search tree branches only over the
    [B^(number of decisions)] battery choices.  Pruning comes from two
    sources.  Memoization over (position, canonical battery multiset):
    identical batteries make many choice orders confluent, so whole
    subtrees collapse onto already-solved positions ([stats.pruned]
    counts those hits).  And branch-and-bound cuts from the admissible
    KiBaM charge bounds of {!Bound}: a child whose score upper bound
    cannot beat the best sibling value found so far — seeded per node by
    an achievable floor, and at the root by one best-of-two policy run
    (the incumbent) — is dropped unexplored ([stats.bound_cuts] counts
    those).  Bounds only ever cut subtrees they prove dominated, so the
    returned lifetime, stranded charge and schedule are bit-identical
    with bounds on or off (asserted in the differential test suite);
    memo entries stay exact subtree values in both modes, which keeps
    the parallel root fan-out and checkpoint resume trivially correct.
    Bounds are on by default; pass [~bounds:false] (or export
    [BATSCHED_NO_BOUNDS=1]) for the unpruned A/B reference —
    see doc/PERFORMANCE.md.

    The hand-over semantics (including the one-step switch delay) are
    exactly those of {!Simulator}, so an optimal schedule replayed through
    {!Simulator.simulate} with [Policy.Fixed] reproduces the same
    lifetime — asserted in the test suite.

    Observability: with [Obs] enabled a search records the
    [optimal.searches] / [optimal.positions] / [optimal.segments] /
    [optimal.memo_hits] / [optimal.memo_misses] /
    [optimal.bound_cuts] counters (all but the miss count mirror
    {!stats} exactly — asserted in the test suite), the
    [optimal.depth] histogram and the [optimal.search] /
    [optimal.branch] spans; see doc/OBSERVABILITY.md.  Results are
    bit-identical with observability on or off. *)

type objective =
  | Max_lifetime  (** maximize the last battery's death time (default) *)
  | Min_stranded
      (** minimize the charge left at death — the paper's actual Cora
          objective (§4.3); the two coincide on the test loads but can
          diverge when hand-over cadence resets waste draws *)
  | Min_lifetime
      (** the {e pessimal} schedule — used to check the paper's §6 claim
          that sequential scheduling "is actually the worst possible way
          to schedule the batteries" *)

(** {2 Budgets, anytime results and checkpoints}

    A search given a {!Guard.Budget.t} checks it cooperatively — one
    charge per simulated segment, one note per stored position — and on
    exhaustion returns the best {e feasible} schedule it can prove
    instead of raising: the best fully-evaluated first-decision branch
    (an exact subtree value, replayed from the memo), floored by one
    best-of-two policy simulation.  The result's {!status} says which.
    A budget with ample bounds never trips and the result is
    bit-identical to an unbudgeted search (asserted over the Table 5
    loads in the test suite).  See doc/ROBUSTNESS.md. *)

type fallback =
  | Search_prefix
      (** the schedule comes from the best completed first-decision
          branch of the truncated search — it scored at least as well
          as the policy floor *)
  | Policy_floor
      (** no completed branch beat (or existed to beat) the best-of-two
          simulation; its schedule is returned *)

type exhaustion = { trip : Guard.Budget.trip; fallback : fallback }

type status =
  | Optimal  (** the search completed; the schedule is exactly optimal *)
  | Budget_exhausted of exhaustion
      (** the budget tripped; the schedule is feasible and scores at
          least as well as the best-of-two policy, but optimality is
          not proven *)

type checkpoint = {
  path : string;  (** snapshot file, written atomically *)
  every_segments : int;  (** snapshot cadence, in simulated segments *)
  resume : bool;  (** preload [path] before searching, if it exists *)
}

val checkpoint : ?every_segments:int -> ?resume:bool -> string -> checkpoint
(** [checkpoint path] with a default cadence of 65536 segments and
    [resume = false].  [every_segments] must be [>= 1]. *)

type result = {
  lifetime_steps : int;  (** step of the last battery's fatal draw *)
  stranded_units : int;  (** charge units left when the last battery died *)
  schedule : int array;
      (** battery chosen at each scheduling point, in order — replayable
          with [Policy.Fixed] *)
  status : status;
      (** [Optimal] unless a budget tripped — see {!status} *)
  stats : stats;
}

and stats = {
  positions_explored : int;
      (** memo table size — distinct (decision point, battery multiset)
          positions solved.  With bounds off, identical between the
          serial and pooled searches: the per-branch tables union to
          the same set.  With bounds on the pooled search may solve
          more positions: its branches cut only against the fixed
          incumbent (never against values arriving from concurrent
          siblings, to keep cut decisions deterministic), so it prunes
          less than the serial loop — the results are still
          bit-identical, only the work differs. *)
  segments_run : int;
      (** deterministic segment simulations during the search (the
          replay's lookups are excluded).  Under [?pool] this exceeds
          the serial count: branches explored privately in two domains
          are simulated in both — redundancy is the price of sharing
          nothing. *)
  pruned : int;
      (** subtree explorations cut short by a memo hit — the §4.4
          confluence at work.  Counted per table, so the pooled search
          reports the sum over its private branch tables, not the
          serial figure. *)
  bound_cuts : int;
      (** subtrees dropped unexplored because their {!Bound} score upper
          bound could not beat an already-known sibling value (or, at
          the root, the best-of-two incumbent).  Distinct from [pruned]:
          a cut subtree was never simulated at all.  Always [0] with
          bounds off. *)
}

(** [initial] admits heterogeneous packs — e.g. a main cell plus a
    partially-sized backup: batteries of the same chemistry and charge
    unit but different remaining charge (build states with
    {!Dkibam.Battery.make}).  Defaults to [n_batteries] full batteries. *)

exception Load_too_short
(** The batteries outlived the load under some schedule; extend the
    load's horizon and retry. *)

(** [allow_final_draw_skip]: the published TA leaves a race open between
    a job's final draw (due exactly when the epoch ends) and the [go_off]
    synchronization; taking [go_off] first elides that draw, which an
    optimizer can exploit to keep a battery alive at the cost of not
    serving the job's last charge quantum.  {!Takibam.Optimal} inherits
    the race from the model; pass [true] here to mirror it (the
    cross-validation tests do), leave the default [false] for physically
    meaningful schedules that serve the whole load. *)

val search :
  ?pool:Exec.Pool.t ->
  ?budget:Guard.Budget.t ->
  ?checkpoint:checkpoint ->
  ?shared:Memo.t ->
  ?switch_delay:int ->
  ?objective:objective ->
  ?bounds:bool ->
  ?allow_final_draw_skip:bool ->
  ?initial:Dkibam.Battery.t array ->
  n_batteries:int ->
  Dkibam.Discretization.t ->
  Loads.Arrays.t ->
  result
(** Exhaustive optimal search.  Exponential in the number of scheduling
    decisions in the worst case (cf. paper §4.4) but heavily memoized
    over (decision point, battery multiset) — identical batteries make
    choice orders confluent; the paper's ten two-battery test loads each
    complete in well under a second.

    [bounds] arms the branch-and-bound layer (see the module comment);
    defaults to [true] unless the [BATSCHED_NO_BOUNDS] environment
    variable is set non-empty.  Results are bit-identical either way;
    only the work statistics ([segments_run], [positions_explored],
    [bound_cuts]) and the wall time change.

    [pool] explores the first-decision branches in parallel, one domain
    pool task per branch, each with a private memo table; the tables are
    merged before the schedule is reconstructed.  Because every memo
    entry is an {e exact} subtree value (never a bound), the merge is
    order-independent and the returned lifetime, stranded charge and
    schedule are identical to the serial search — asserted over all ten
    Table 5 loads in the test suite.  Only the work statistics differ
    (see {!stats}).

    [budget] bounds the work; on exhaustion the result carries
    [Budget_exhausted] and an anytime schedule (see the section above).
    A budget may be shared with other searches and with the pool — its
    first trip cancels them all promptly.  [Load_too_short] is still
    raised if even the fallback policy outlives the load.

    [checkpoint] snapshots the memo table to [checkpoint.path] every
    [every_segments] simulated segments and once more when the search
    phase ends, each time atomically; with [resume = true] a snapshot
    whose fingerprint matches these search inputs is preloaded, and the
    resumed search returns the same lifetime, stranded charge and
    schedule as an uninterrupted run (memo entries are exact, so a
    preload only converts misses into hits — [stats] reflect the work
    of this process only).  Entries are exact in both bound modes, so a
    snapshot written with bounds on resumes soundly with bounds off and
    vice versa; the snapshot magic is [sched.optimal.memo.v2], and a
    pre-bounds [v1] snapshot (or any other magic/fingerprint mismatch)
    raises {!Guard.Error.Error} rather than resuming from garbage.  A
    checkpointed search ignores [pool] and runs serially.

    [shared] plugs a process-wide {!Memo} store under the private memo
    table: lookups fall through to the store, and every exact value
    computed here is published back, scoped by the same input
    fingerprint the checkpoint layer uses (plus a kind tag, so search
    and planner entries never collide).  Memo entries are exact subtree
    values independent of exploration order, bound mode and budget
    warmth, so sharing across concurrent searches — the daemon's worker
    domains — changes {e only} the work statistics; lifetime, stranded
    charge and the replayed schedule stay bit-identical, warm or
    cold.  Asserted by [test/test_memo.ml]. *)

val lifetime :
  ?pool:Exec.Pool.t ->
  ?budget:Guard.Budget.t ->
  ?switch_delay:int ->
  ?objective:objective ->
  ?bounds:bool ->
  ?allow_final_draw_skip:bool ->
  ?initial:Dkibam.Battery.t array ->
  n_batteries:int ->
  Dkibam.Discretization.t ->
  Loads.Arrays.t ->
  float
(** Optimal system lifetime in minutes ([search] composed with
    {!Dkibam.Discretization.minutes_of_steps}; [pool] and [budget] as in
    [search] — under a tripped budget this is the anytime lifetime). *)

(** {2 Bounded lookahead}

    Between best-of (depth 0 heuristics) and the exhaustive search lies a
    spectrum: evaluate each candidate battery by searching only [depth]
    scheduling decisions ahead and scoring the frontier heuristically
    (died: by death time; alive: by remaining available charge).  Such a
    policy is implementable on a real device — it needs only bounded
    knowledge of the upcoming load — which is exactly the gap the paper's
    conclusion points at ("the optimal scheduler can only be used when
    the load is known in advance").  The ablation bench sweeps [depth]
    from 1 upward and watches the lifetimes climb toward the optimum. *)

val lookahead_policy :
  ?switch_delay:int ->
  ?allow_final_draw_skip:bool ->
  depth:int ->
  Dkibam.Discretization.t ->
  Loads.Arrays.t ->
  Policy.t
(** [lookahead_policy ~depth disc load]: a {!Policy.Custom} that searches
    [depth >= 1] decisions ahead at every scheduling point.  The policy
    closes over [load]; feeding it to a simulation of a different load
    raises [Invalid_argument]. *)

(** {2 Suffix planning with a terminal bound}

    The search core of the receding-horizon policy ({!Horizon}): an
    exact, memoized, bound-pruned search over a {e window} of the load —
    from an arbitrary decision point up to a frontier epoch — with the
    admissible pooled-recovery lower bound of {!Bound.lifetime_lb} as
    the terminal value at the frontier.  Every window value is a death
    step some continuation provably reaches (or {!Bound.infinite} when
    survival past the load is proven), so committing the argmax choice
    is well-founded: the system is {e guaranteed} to be able to live at
    least [plan_value] steps after the commitment.  doc/PLANNING.md
    derives the construction. *)

type planner
(** Per-load planning state: the cursor, the precomputed {!Bound}
    suffix views, and a memo table of exact window values shared across
    successive {!plan} calls (keyed by frontier, so re-plans at the same
    window reuse solved subtrees).  Not domain-safe: use one planner per
    domain, as {!Horizon} does. *)

val planner :
  ?switch_delay:int ->
  ?bounds:bool ->
  ?shared:Memo.scope ->
  Dkibam.Discretization.t ->
  Loads.Cursor.t ->
  planner
(** [planner disc cursor] precomputes the bound views of the load
    ([O(epochs)]).  [switch_delay] defaults to 1, matching {!search} and
    {!Simulator.simulate}.  [bounds] arms the branch-and-bound cuts
    inside {!plan} (default: on unless [BATSCHED_NO_BOUNDS] is set);
    planned choices are bit-identical either way — only the work
    changes.  [shared] backs the private window-value memo with a
    process-wide {!Memo} scope: window values are exact and
    frontier-keyed, so planners for the same (load, battery,
    switch-delay) — concurrent daemon requests re-planning the same
    windows — may share one scope and stay bit-identical; the caller
    owns the scope fingerprint and must key it on everything that
    shapes the values. *)

type plan = {
  plan_choice : int;  (** the battery to commit at the planning point *)
  plan_value : int;
      (** certified value of that commitment: a step the system provably
          survives to under some continuation, or {!Bound.infinite} when
          it provably can outlive the load *)
}

val plan :
  ?budget:Guard.Budget.t ->
  planner ->
  frontier_epoch:int ->
  y:int ->
  local:int ->
  Bank.t ->
  plan option
(** [plan t ~frontier_epoch ~y ~local bank]: search every battery choice
    from decision point [(y, local, bank)] through all decisions in
    epochs [< frontier_epoch], scoring frontier positions with the
    terminal bound; first-maximum tie-breaking (lowest battery id), the
    same selection {!search}'s schedule replay makes — with the frontier
    past the load's last epoch the planned choice is exactly the optimal
    one.  [budget] is charged one unit per simulated segment; [None] is
    returned if it trips mid-plan (entries memoized before the trip are
    exact and are kept).  Raises [Invalid_argument] if [(y, local)] is
    not inside the load or no battery is alive. *)
