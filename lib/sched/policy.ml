type decision_context = {
  disc : Dkibam.Discretization.t;
  job_index : int;
  epoch_index : int;
  step : int;
  mid_job : bool;
  batteries : Dkibam.Battery.t array;
  alive : int list;
  cursor : Loads.Cursor.t option;
}

type t =
  | Sequential
  | Round_robin
  | Best_of
  | Fixed of int array
  | Custom of (decision_context -> int)

let name = function
  | Sequential -> "sequential"
  | Round_robin -> "round robin"
  | Best_of -> "best-of"
  | Fixed _ -> "fixed schedule"
  | Custom _ -> "custom"

let available_milli d b = Dkibam.Battery.available_milli_units d b

let best_of ctx =
  match ctx.alive with
  | [] -> invalid_arg "Sched.Policy: no battery alive"
  | first :: rest ->
      List.fold_left
        (fun best id ->
          if
            available_milli ctx.disc ctx.batteries.(id)
            > available_milli ctx.disc ctx.batteries.(best)
          then id
          else best)
        first rest

let decide policy ~state ctx =
  match ctx.alive with
  | [] -> invalid_arg "Sched.Policy.decide: no battery alive"
  | alive -> (
      match policy with
      | Sequential -> List.hd alive
      | Round_robin ->
          (* [state] is the cyclic cursor: the id after the previously
             chosen one; skip dead batteries. *)
          let n = Array.length ctx.batteries in
          let rec find k count =
            if count > n then List.hd alive
            else if List.mem (k mod n) alive then k mod n
            else find (k + 1) (count + 1)
          in
          let chosen = find !state 0 in
          state := chosen + 1;
          chosen
      | Best_of -> best_of ctx
      | Fixed schedule ->
          let k = !state in
          incr state;
          if k < Array.length schedule && List.mem schedule.(k) alive then
            schedule.(k)
          else best_of ctx
      | Custom f ->
          let id = f ctx in
          if not (List.mem id alive) then
            invalid_arg
              (Printf.sprintf
                 "Sched.Policy.decide: custom policy chose dead/invalid \
                  battery %d"
                 id);
          id)
