(* Observability: one span execution per load (tagged with the load's
   index, so a trace shows the fan-out lane by lane) and a load
   counter; the per-domain split of [ensemble.load] total time is the
   pool-utilization picture for this workload. *)
let c_loads = Obs.counter "ensemble.loads"
let s_run = Obs.span "ensemble.run"
let s_load = Obs.span "ensemble.load"

type stats = {
  mean : float;
  stddev : float;
  minimum : float;
  q25 : float;
  median : float;
  q75 : float;
  maximum : float;
}

let stats_of samples =
  match samples with
  | [] -> invalid_arg "Sched.Ensemble.stats_of: empty sample"
  | _ ->
      let sorted = List.sort compare samples in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let quantile q =
        let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
        arr.(max 0 (min (n - 1) rank))
      in
      let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
        /. float_of_int n
      in
      {
        mean;
        stddev = sqrt var;
        minimum = arr.(0);
        q25 = quantile 0.25;
        median = quantile 0.5;
        q75 = quantile 0.75;
        maximum = arr.(n - 1);
      }

type t = {
  n_loads : int;
  n_batteries : int;
  per_policy : (string * stats) list;
  top_gain_over_rr : stats;
  best_of_matches_top_fraction : float;
  gain_baseline : string;
  budget_exhausted : int;
}

(* One load's worth of work — pure given the seed, which is what lets
   [run] fan the loads out to a domain pool without changing a bit of
   the result. *)
type per_load = {
  pl_lifetimes : (string * float) list;  (* by policy name, in order *)
  pl_top : float;
  pl_rr : float;
  pl_best_of : float;
  pl_exhausted : bool;  (* this load's optimal search was truncated *)
}

let run ?pool ?budget ?(seed = 42L) ?(n_loads = 50) ?(jobs_per_load = 60)
    ?(n_batteries = 2) ?(include_optimal = true) ?bounds
    ?(extra_policies = []) (disc : Dkibam.Discretization.t) () =
  if n_loads < 1 then invalid_arg "Sched.Ensemble.run: need >= 1 load";
  Obs.time s_run @@ fun () ->
  let g = Prng.Splitmix.create seed in
  let policies =
    [
      ("sequential", Policy.Sequential);
      ("round robin", Policy.Round_robin);
      ("best-of", Policy.Best_of);
    ]
  in
  List.iter
    (fun (name, _) ->
      if name = "optimal" || List.mem_assoc name policies then
        invalid_arg
          (Printf.sprintf "Sched.Ensemble.run: extra policy name %S is taken"
             name))
    extra_policies;
  let policies = policies @ extra_policies in
  (* Per-load PRNG streams are seed-split up front, so the per-load work
     below depends only on its own seed — embarrassingly parallel. *)
  let seeds = Array.init n_loads (fun _ -> Prng.Splitmix.next_int64 g) in
  (* The policy simulations are packed into one batched pass: one lane
     per (load, policy), chunked over the pool by Simulator.run_batch —
     the struct-of-arrays engine replaces n_loads * |policies| boxed
     scalar runs with a handful of flat batches, bit-identically.  Only
     the optimal searches (not batchable: each is its own tree search)
     remain per-load tasks below. *)
  let all_arrays =
    Array.init n_loads (fun i ->
        Loads.Arrays.make ~time_step:disc.time_step
          ~charge_unit:disc.charge_unit
          (Loads.Random_load.intermitted ~seed:seeds.(i) ~jobs:jobs_per_load ()))
  in
  let n_policies = List.length policies in
  let policy_arr = Array.of_list policies in
  let sim_requests =
    Array.init (n_loads * n_policies) (fun k ->
        {
          Simulator.req_load = all_arrays.(k / n_policies);
          req_policy = snd policy_arr.(k mod n_policies);
        })
  in
  let sims = Simulator.run_batch ?pool ~n_batteries disc sim_requests in
  let one i =
    let arrays = all_arrays.(i) in
    Obs.incr c_loads;
    Obs.time ~index:i s_load @@ fun () ->
    let lifetimes =
      List.mapi
        (fun p (name, _) ->
          match sims.((i * n_policies) + p).Simulator.res_lifetime_steps with
          | Some s -> (name, Dkibam.Discretization.minutes_of_steps disc s)
          | None ->
              failwith
                "Sched.Ensemble.run: batteries outlived the load; extend the \
                 horizon")
        policies
    in
    let rr = List.assoc "round robin" lifetimes in
    let best_of = List.assoc "best-of" lifetimes in
    (* A shared budget degrades gracefully: once it trips, this load's
       (and every later load's) optimal search returns its anytime
       result and the ensemble still completes — the policy
       simulations are unbudgeted, only the top schedule degrades,
       and [budget_exhausted] reports how many loads were affected. *)
    let top, exhausted =
      if include_optimal then begin
        let r = Optimal.search ?budget ?bounds ~n_batteries disc arrays in
        ( Dkibam.Discretization.minutes_of_steps disc r.Optimal.lifetime_steps,
          match r.Optimal.status with
          | Optimal.Optimal -> false
          | Optimal.Budget_exhausted _ -> true )
      end
      else (best_of, false)
    in
    {
      pl_lifetimes = lifetimes;
      pl_top = top;
      pl_rr = rr;
      pl_best_of = best_of;
      pl_exhausted = exhausted;
    }
  in
  let per_load =
    match pool with
    | Some p -> Exec.Pool.parallel_init ~chunk:1 p n_loads one
    | None -> Array.init n_loads one
  in
  (* Serial, order-preserving fold over the per-load results. *)
  let results = Hashtbl.create 8 in
  let push name v =
    Hashtbl.replace results name
      (v :: Option.value ~default:[] (Hashtbl.find_opt results name))
  in
  let gains = ref [] in
  let best_hits = ref 0 in
  let exhausted = ref 0 in
  Array.iter
    (fun pl ->
      List.iter (fun (name, lt) -> push name lt) pl.pl_lifetimes;
      if include_optimal then push "optimal" pl.pl_top;
      if Float.abs (pl.pl_top -. pl.pl_best_of) < 1e-9 then incr best_hits;
      if pl.pl_exhausted then incr exhausted;
      gains := (100.0 *. (pl.pl_top -. pl.pl_rr) /. pl.pl_rr) :: !gains)
    per_load;
  let names =
    List.map fst policies @ if include_optimal then [ "optimal" ] else []
  in
  {
    n_loads;
    n_batteries;
    per_policy =
      List.map (fun name -> (name, stats_of (Hashtbl.find results name))) names;
    top_gain_over_rr = stats_of !gains;
    best_of_matches_top_fraction =
      float_of_int !best_hits /. float_of_int n_loads;
    gain_baseline = (if include_optimal then "optimal" else "best-of");
    budget_exhausted = !exhausted;
  }
