(* Observability: one [horizon.plans] tick per lookahead search, with
   the mid-job subset double-counted under [horizon.replans] (deaths
   force an unscheduled re-plan) and budget-tripped plans — the ones
   answered by the fallback heuristic — under [horizon.budget_trips]. *)
let c_plans = Obs.counter "horizon.plans"
let c_replans = Obs.counter "horizon.replans"
let c_trips = Obs.counter "horizon.budget_trips"

type fallback = Best_of | Round_robin

(* Per-run planning state.  The simulator builds a fresh cursor per run,
   so keying on cursor identity gives every simulation its own planner:
   memo reuse never crosses runs (per-decision budget trips stay a
   deterministic function of the run alone) and never crosses domains
   (each run executes on one domain; the cache lives in domain-local
   storage, so no locks — the exec-layer rule). *)
type entry = {
  e_cursor : Loads.Cursor.t;
  e_switch_delay : int;
  e_bounds : bool option;
  e_shared : Memo.scope option;
  e_planner : Optimal.planner;
  e_job_epochs : int array;  (* epoch index of each job, in order *)
  e_epoch_count : int;
}

let cache : entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let cache_cap = 8

let entry_for ~switch_delay ~bounds ~shared (disc : Dkibam.Discretization.t)
    (cursor : Loads.Cursor.t) =
  let slot = Domain.DLS.get cache in
  let hit e =
    e.e_cursor == cursor && e.e_switch_delay = switch_delay
    && e.e_bounds = bounds
    &&
    match (e.e_shared, shared) with
    | None, None -> true
    | Some a, Some b -> Memo.scope_equal a b
    | _ -> false
  in
  match List.find_opt hit !slot with
  | Some e ->
      slot := e :: List.filter (fun e' -> not (hit e')) !slot;
      e
  | None ->
      let epoch_count = Loads.Cursor.epoch_count cursor in
      let job_epochs =
        Array.of_list
          (List.filter
             (fun y -> not (Loads.Cursor.is_idle cursor y))
             (List.init epoch_count Fun.id))
      in
      let e =
        {
          e_cursor = cursor;
          e_switch_delay = switch_delay;
          e_bounds = bounds;
          e_shared = shared;
          e_planner = Optimal.planner ~switch_delay ?bounds ?shared disc cursor;
          e_job_epochs = job_epochs;
          e_epoch_count = epoch_count;
        }
      in
      slot := e :: (if List.length !slot >= cache_cap then
                      List.filteri (fun i _ -> i < cache_cap - 1) !slot
                    else !slot);
      e

(* Stateless cyclic fallback: the round-robin cycle derived from the job
   index alone (no cross-decision state, so the choice is a pure
   function of the decision context — deterministic across lanes, pools
   and re-runs). *)
let cyclic (ctx : Policy.decision_context) =
  let n = Array.length ctx.batteries in
  let rec find k count =
    if count >= n then List.hd ctx.alive
    else if List.mem (k mod n) ctx.alive then k mod n
    else find (k + 1) (count + 1)
  in
  find (ctx.job_index mod n) 0

let policy ?(switch_delay = 1) ?bounds ?shared ?budget_segments
    ?(fallback = Best_of) ~k () =
  if k < 1 then invalid_arg "Sched.Horizon.policy: k must be >= 1";
  (match budget_segments with
  | Some n when n < 1 ->
      invalid_arg "Sched.Horizon.policy: budget_segments must be >= 1"
  | _ -> ());
  let decide (ctx : Policy.decision_context) =
    let cursor =
      match ctx.cursor with
      | Some c -> c
      | None ->
          invalid_arg
            "Sched.Horizon: this driver provides no load cursor to plan over"
    in
    let e = entry_for ~switch_delay ~bounds ~shared ctx.disc cursor in
    (* Window: jobs [job_index .. job_index + k - 1]; the frontier is the
       epoch of job [job_index + k], or past the load when fewer jobs
       remain (then the plan is the exact optimal suffix search). *)
    let jf = ctx.job_index + k in
    let frontier_epoch =
      if jf >= Array.length e.e_job_epochs then e.e_epoch_count
      else e.e_job_epochs.(jf)
    in
    (* Mirror the simulator's hand-over semantics: at a mid-job
       replacement the switch delay elapses after the policy is
       consulted, so plan from the post-delay state. *)
    let delay = if ctx.mid_job then switch_delay else 0 in
    let bank =
      Bank.of_parts ctx.disc
        ~batteries:
          (Array.map
             (fun b -> Dkibam.Battery.tick_many ctx.disc delay b)
             ctx.batteries)
        ~dead:
          (Array.init (Array.length ctx.batteries) (fun i ->
               not (List.mem i ctx.alive)))
    in
    let budget =
      Option.map
        (fun n -> Guard.Budget.create ~max_segments:n ())
        budget_segments
    in
    Obs.incr c_plans;
    if ctx.mid_job then Obs.incr c_replans;
    match
      Optimal.plan ?budget e.e_planner ~frontier_epoch ~y:ctx.epoch_index
        ~local:(ctx.step - Loads.Cursor.epoch_start cursor ctx.epoch_index
                + delay)
        bank
    with
    | Some p -> p.Optimal.plan_choice
    | None -> (
        Obs.incr c_trips;
        match fallback with
        | Best_of -> Policy.best_of ctx
        | Round_robin -> cyclic ctx)
  in
  Policy.Custom decide

let name ?budget_segments ~k () =
  match budget_segments with
  | None -> Printf.sprintf "horizon-%d" k
  | Some n -> Printf.sprintf "horizon-%d(budget %d)" k n
