(* Process-wide concurrent memo store for exact search values.

   Sharded: a key hashes to one of [shards] independent
   mutex-protected hashtables, so concurrent searches on different
   worker domains contend only when their keys collide on a shard —
   the lock hold time is one hashtable probe or insert, never a search
   segment.  Values are exact subtree/window values (ints), so a racy
   double-compute of the same key always inserts the same value:
   first-writer-wins needs no compare.

   Bounded: each shard owns capacity/shards entries, evicted
   second-chance (CLOCK): a FIFO of keys with a referenced bit set on
   every hit; the victim scan clears bits and recycles until it finds
   an unreferenced key.  One full lap of the FIFO clears every bit, so
   the scan terminates and recently-hit entries survive one extra
   round — LRU-approximate at O(1) amortized per insert.

   Statistics are per-store atomics (exact under concurrency: every
   lookup increments [lookups] and exactly one of [hits]/[misses], so
   hits + misses = lookups once callers quiesce — asserted by the race
   tests), mirrored into the global [memo.*] Obs family. *)

let c_lookups = Obs.counter "memo.lookups"
let c_hits = Obs.counter "memo.hits"
let c_misses = Obs.counter "memo.misses"
let c_insertions = Obs.counter "memo.insertions"
let c_evictions = Obs.counter "memo.evictions"
let g_entries = Obs.gauge "memo.entries"

module Key = struct
  type t = { fp : string; cells : int array }

  let equal a b = String.equal a.fp b.fp && a.cells = b.cells

  let hash { fp; cells } =
    let h = ref (Hashtbl.hash fp) in
    Array.iter (fun v -> h := (!h lxor v) * 0x100000001b3 land max_int) cells;
    !h
end

module Tbl = Hashtbl.Make (Key)

type entry = { value : int; mutable referenced : bool }

type shard = {
  lock : Mutex.t;
  tbl : entry Tbl.t;
  fifo : Key.t Queue.t;  (* insertion order; may hold stale keys *)
  shard_capacity : int;
}

type t = {
  shards : shard array;
  capacity : int;
  entries : int Atomic.t;
  lookups : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  insertions : int Atomic.t;
  evictions : int Atomic.t;
}

type stats = {
  st_entries : int;
  st_capacity : int;
  st_lookups : int;
  st_hits : int;
  st_misses : int;
  st_insertions : int;
  st_evictions : int;
}

let create ?(shards = 16) ~capacity () =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Sched.Memo.create: capacity = %d < 1" capacity);
  if shards < 1 then
    invalid_arg (Printf.sprintf "Sched.Memo.create: shards = %d < 1" shards);
  let shards = min shards capacity in
  {
    shards =
      Array.init shards (fun i ->
          (* distribute the bound exactly: shard capacities sum to
             [capacity], each >= 1 *)
          let cap = (capacity / shards) + (if i < capacity mod shards then 1 else 0) in
          {
            lock = Mutex.create ();
            tbl = Tbl.create (min 4096 (max 16 cap));
            fifo = Queue.create ();
            shard_capacity = cap;
          });
    capacity;
    entries = Atomic.make 0;
    lookups = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    insertions = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let capacity t = t.capacity

let shard_of t key = t.shards.(Key.hash key mod Array.length t.shards)

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

type scope = { s_t : t; s_fp : string }

let scope t ~fingerprint = { s_t = t; s_fp = fingerprint }
let scope_equal a b = a.s_t == b.s_t && String.equal a.s_fp b.s_fp

let find scope cells =
  let t = scope.s_t in
  let key = { Key.fp = scope.s_fp; cells } in
  let s = shard_of t key in
  Atomic.incr t.lookups;
  Obs.incr c_lookups;
  let hit =
    with_lock s.lock (fun () ->
        match Tbl.find_opt s.tbl key with
        | Some e ->
            e.referenced <- true;
            Some e.value
        | None -> None)
  in
  (match hit with
  | Some _ ->
      Atomic.incr t.hits;
      Obs.incr c_hits
  | None ->
      Atomic.incr t.misses;
      Obs.incr c_misses);
  hit

(* The CLOCK victim scan.  Shard lock held.  Terminates: every
   recycled key has its bit cleared, so at most one full FIFO lap
   passes before an unreferenced key surfaces.  The FIFO always covers
   the table (inserts push, only evictions pop), so an empty FIFO
   means an empty table; the [None] arm is pure defense against that
   invariant ever breaking — drop everything rather than spin. *)
let rec evict_one t s =
  match Queue.take_opt s.fifo with
  | None ->
      let n = Tbl.length s.tbl in
      Tbl.reset s.tbl;
      ignore (Atomic.fetch_and_add t.entries (-n) : int)
  | Some k -> (
      match Tbl.find_opt s.tbl k with
      | Some e when e.referenced ->
          e.referenced <- false;
          Queue.push k s.fifo;
          evict_one t s
      | Some _ ->
          Tbl.remove s.tbl k;
          Atomic.decr t.entries;
          Atomic.incr t.evictions;
          Obs.incr c_evictions
      | None -> evict_one t s (* unreachable: see the invariant above *))

let add scope cells value =
  let t = scope.s_t in
  let key = { Key.fp = scope.s_fp; cells } in
  let s = shard_of t key in
  with_lock s.lock (fun () ->
      if not (Tbl.mem s.tbl key) then begin
        while Tbl.length s.tbl >= s.shard_capacity do
          evict_one t s
        done;
        Tbl.replace s.tbl key { value; referenced = false };
        Queue.push key s.fifo;
        Atomic.incr t.entries;
        Atomic.incr t.insertions;
        Obs.incr c_insertions;
        Obs.gauge_max g_entries (Atomic.get t.entries)
      end)

let entries t = Atomic.get t.entries

let stats t =
  {
    st_entries = Atomic.get t.entries;
    st_capacity = t.capacity;
    st_lookups = Atomic.get t.lookups;
    st_hits = Atomic.get t.hits;
    st_misses = Atomic.get t.misses;
    st_insertions = Atomic.get t.insertions;
    st_evictions = Atomic.get t.evictions;
  }
