type entry = {
  policy_name : string;
  lifetime : float;
  lifetime_steps : int;
  stranded_units : int;
  gain_over_baseline : float;
}

type t = { n_batteries : int; entries : entry list }

let default_policies =
  [
    ("sequential", Policy.Sequential);
    ("round robin", Policy.Round_robin);
    ("best-of", Policy.Best_of);
  ]

let compare_policies ?switch_delay ?(policies = default_policies)
    ?(baseline = "round robin") ?(include_optimal = true) ~n_batteries
    (disc : Dkibam.Discretization.t) (load : Loads.Arrays.t) =
  let run_policy (name, policy) =
    let o = Simulator.simulate ?switch_delay ~n_batteries ~policy disc load in
    match o.lifetime_steps with
    | None ->
        failwith
          (Printf.sprintf
             "Sched.Analysis: policy %S outlived the load; extend the horizon"
             name)
    | Some steps ->
        ( name,
          steps,
          Bank.stranded_units o.final,
          Dkibam.Discretization.minutes_of_steps disc steps )
  in
  let deterministic = List.map run_policy policies in
  let optimal =
    if include_optimal then begin
      let r = Optimal.search ?switch_delay ~n_batteries disc load in
      [
        ( "optimal",
          r.lifetime_steps,
          r.stranded_units,
          Dkibam.Discretization.minutes_of_steps disc r.lifetime_steps );
      ]
    end
    else []
  in
  let rows = deterministic @ optimal in
  let base_lifetime =
    match List.find_opt (fun (n, _, _, _) -> n = baseline) rows with
    | Some (_, _, _, lt) -> lt
    | None ->
        invalid_arg
          (Printf.sprintf "Sched.Analysis: baseline %S not among the policies"
             baseline)
  in
  {
    n_batteries;
    entries =
      List.map
        (fun (policy_name, lifetime_steps, stranded_units, lifetime) ->
          {
            policy_name;
            lifetime;
            lifetime_steps;
            stranded_units;
            gain_over_baseline =
              100.0 *. (lifetime -. base_lifetime) /. base_lifetime;
          })
        rows;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d batteries:@," t.n_batteries;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-12s %8.2f min  (%+.1f%%, %d units stranded)@,"
        e.policy_name e.lifetime e.gain_over_baseline e.stranded_units)
    t.entries;
  Format.fprintf ppf "@]"
