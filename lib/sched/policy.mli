(** Battery scheduling policies (paper §6).

    A policy decides, at every scheduling point, which battery serves the
    upcoming work.  Scheduling points are (a) the start of each job epoch
    and (b) the instant a serving battery is observed empty mid-job
    (paper §4.3).  Only non-empty batteries may be chosen; the simulator
    guarantees [alive] is non-empty when it consults a policy. *)

type decision_context = {
  disc : Dkibam.Discretization.t;
  job_index : int;  (** 0-based index among job epochs *)
  epoch_index : int;  (** index into the full epoch list *)
  step : int;  (** absolute time step of the decision *)
  mid_job : bool;  (** true when replacing a battery that just died *)
  batteries : Dkibam.Battery.t array;  (** all batteries, by id *)
  alive : int list;  (** ids still usable, ascending *)
  cursor : Loads.Cursor.t option;
      (** the driver's view of the load being served, when the driver
          iterates an ordinary load — {!Simulator.simulate} always
          supplies it.  [None] in drivers without one (the TA replay in
          [lib/takibam]).  Planning policies ({!Horizon}) need it to
          look ahead; fixed heuristics ignore it. *)
}

type t =
  | Sequential
      (** use the lowest-numbered alive battery until it dies (paper:
          "only when one battery is empty the other is used") *)
  | Round_robin
      (** a new battery for every new job, in fixed cyclic order,
          skipping dead batteries; a mid-job replacement continues the
          cycle *)
  | Best_of
      (** the alive battery with the most charge in the available-charge
          well (paper's best-of-two, for any number of batteries);
          lowest id wins ties *)
  | Fixed of int array
      (** an explicit battery per scheduling point — how optimal
          schedules found by search are replayed; falls back to
          best-of when the array is exhausted or names a dead battery *)
  | Custom of (decision_context -> int)
      (** user-supplied; must return a member of [alive] *)

val name : t -> string

val decide : t -> state:int ref -> decision_context -> int
(** Apply the policy.  [state] is the policy's private counter across one
    simulation run (round-robin's cursor / the fixed schedule's position);
    initialize it to [ref 0] per run.  Raises [Invalid_argument] if a
    [Custom] policy returns a dead or out-of-range battery. *)

val available_milli : Dkibam.Discretization.t -> Dkibam.Battery.t -> int
(** The best-of comparison key, re-exported for tests. *)

val best_of : decision_context -> int
(** The {!Best_of} choice as a bare function — the fullest alive battery,
    lowest id on ties.  Stateless; used as the budget-trip fallback of
    planning policies ({!Horizon}). *)
