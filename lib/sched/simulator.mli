(** Multi-battery dKiBaM simulator.

    Executes a load over [n] batteries under a {!Policy.t}, with the
    event semantics of the TA-KiBaM network (paper §4.2–4.3):

    - all batteries recover concurrently, every time step;
    - the serving battery draws [cur] units on every cadence interval,
      with the discharge cadence restarting at every switch-on;
    - emptiness is observed at draw instants; the fatal draw's instant is
      the battery's death time, and a replacement (chosen by the policy)
      continues the job after the [switch_delay]-step hand-over (the
      emptied -> new_job -> go_on chain; default 1 — the only value
      consistent with the paper's odd-step lifetimes such as 4.53 for
      CL 500 round-robin, and the one matching 17 of the 24 deterministic
      Table 5 entries exactly, the rest within one draw interval; the
      chain's timing is not fully pinned down by the published model) —
      unless the hand-over would outlive the job, in which case the next
      scheduling point is the next job;
    - a battery observed empty is never used again, although it keeps
      recovering (paper §4.3);
    - system lifetime = the instant the {e last} battery dies. *)

type sample = {
  s_step : int;
  s_batteries : Dkibam.Battery.t array;
  s_serving : int option;  (** battery currently serving a job *)
}

type outcome = {
  lifetime_steps : int option;
      (** [Some s]: all batteries were empty at step [s]; [None]: the
          load ended with at least one battery alive *)
  deaths : (int * int) list;  (** (battery id, death step), chronological *)
  decisions : (int * int) list;
      (** (scheduling point index, battery chosen), chronological *)
  serving_intervals : (int * int * int) list;
      (** (from step, to step exclusive, battery id) spans, chronological *)
  final : Dkibam.Battery.t array;
  samples : sample list;  (** empty unless [trace_every] was given *)
}

val simulate :
  ?initial:Dkibam.Battery.t array ->
  ?trace_every:int ->
  ?switch_delay:int ->
  n_batteries:int ->
  policy:Policy.t ->
  Dkibam.Discretization.t ->
  Loads.Arrays.t ->
  outcome
(** Run the whole load (or until all batteries die).  [initial] defaults
    to [n_batteries] full batteries; its length must equal
    [n_batteries]. *)

(** {2 Batched execution}

    Many (load, policy) runs per call, executed on the struct-of-arrays
    batch engine ([Batch.Engine]) when possible and on {!simulate}
    otherwise — results are bit-identical either way, the choice only
    moves wall-clock time.  A request falls back to the scalar path
    when its policy is [Custom] (an arbitrary closure cannot run on the
    flat planes), when its load's compiled schedule is refused by the
    [Loads.Cursor.compile] overflow guard, or when [BATSCHED_NO_BATCH]
    is set in the environment (the CI fallback pass). *)

type batch_request = { req_load : Loads.Arrays.t; req_policy : Policy.t }

type batch_result = {
  res_lifetime_steps : int option;
      (** as [outcome.lifetime_steps]: [Some s] — the last battery
          died at step [s]; [None] — the load ended first *)
  res_stranded : int;
      (** charge units left across the bank at the end of the run
          ({!Bank.stranded_units} of the final state) *)
}

val run_batch :
  ?pool:Exec.Pool.t ->
  ?switch_delay:int ->
  ?chunk:int ->
  ?batch:bool ->
  n_batteries:int ->
  Dkibam.Discretization.t ->
  batch_request array ->
  batch_result array
(** [run_batch ~n_batteries disc requests]: result slot [i] always
    holds request [i]'s outcome, whatever path or domain ran it.  Each
    distinct load (by physical equality) is compiled once and shared
    read-only across lanes.  Batched lanes are chopped into
    [chunk]-lane batches (default 4096, must be [>= 1]) and — with
    [pool] — fanned out across the domains together with the scalar
    fallback lanes; submit from the pool-owning domain only.  [batch]
    overrides the environment default (see above) for A/B harnesses. *)

val lifetime :
  ?switch_delay:int ->
  n_batteries:int ->
  policy:Policy.t ->
  Dkibam.Discretization.t ->
  Loads.Arrays.t ->
  float option
(** System lifetime in minutes. *)

val lifetime_exn :
  ?switch_delay:int ->
  n_batteries:int ->
  policy:Policy.t ->
  Dkibam.Discretization.t ->
  Loads.Arrays.t ->
  float
