(** Monte Carlo fleet estimation: policy lifetime {e distributions}
    over sampled stochastic device traces.

    The paper compares policies on ten fixed traces; a fleet is random.
    [run] draws [samples] device traces from a stochastic load model
    ({!Stoch.Onoff} or {!Stoch.Env}), runs {e every} policy on {e
    every} trace (common random numbers, so policies are compared on
    paired samples), and reduces the lifetimes online into per-policy
    summaries: streaming mean/stddev ({!Stoch.Sketch.Moments}),
    percentile lifetimes ({!Stoch.Sketch.P2} — no per-lane retention,
    whatever the fleet size), death counts, optional
    P(death before [deadline_min]) and pairwise policy-dominance
    fractions, each with a 95% normal-approximation confidence
    interval.

    Execution rides {!Simulator.run_batch}: traces are processed in
    fixed-order blocks of [block] samples, each block one batched pass
    (the struct-of-arrays engine, fanned over [pool] when given, scalar
    fallback under [BATSCHED_NO_BATCH]).

    {b Determinism contract.}  Per-trace seeds are derived with
    {!Prng.Splitmix.split} from the root [seed] — lane [i]'s trace is a
    pure function of [(model, seed, i)] — and the reduction is a serial
    fold in sample order on the submitting domain.  Same [seed], same
    [samples], same [model] ⇒ bit-identical results, regardless of
    [pool] size, [block], chunking, or the batch/scalar choice
    (asserted in [test/test_stoch.ml]; see [doc/STOCHASTICS.md]).

    {b Censoring.}  A trace whose batteries outlive it has no death
    time; it is counted in [ps_survived] and enters the mean/quantile
    sketches at the trace's own horizon (a right-censored value).  With
    many censored lanes the mean and upper quantiles are conservative
    lower bounds — size the model's horizon so deaths dominate when the
    tail matters.

    {b Anytime cutoff.}  With a [budget], each completed sample charges
    one work unit ([Guard.Budget.charge_segments]) and the budget is
    checked between blocks: on a trip the driver stops and returns the
    fully-reduced prefix, with [mc_samples] telling how many samples
    the estimates reflect and [mc_tripped] why it stopped.  Count-based
    budgets trip at deterministic sample counts (block granularity);
    deadlines are wall-clock and hence machine-dependent. *)

type model = Onoff of Stoch.Onoff.t | Env of Stoch.Env.t
(** The stochastic load models the driver can sample from. *)

val model_name : model -> string
(** ["onoff"] or ["env"] — the [--model] spelling. *)

val sample_load : model -> seed:int64 -> Loads.Epoch.t
(** Draw one device trace from the model (dispatches to
    {!Stoch.Onoff.sample} / {!Stoch.Env.sample}). *)

type death_before = {
  db_deadline_min : float;  (** the deadline the probability is against *)
  db_deaths : int;  (** samples with death strictly before it *)
  db_fraction : float;  (** [db_deaths / mc_samples] *)
  db_ci_low : float;  (** 95% normal-approximation CI, clamped to [0,1] *)
  db_ci_high : float;
}
(** P(system death strictly before a mission deadline). *)

type policy_summary = {
  ps_policy : string;  (** policy name, as given in [policies] *)
  ps_deaths : int;  (** traces on which all batteries died *)
  ps_survived : int;  (** censored traces: batteries outlived the load *)
  ps_mean : float;  (** mean lifetime in minutes (censored at horizon) *)
  ps_stddev : float;  (** population standard deviation, minutes *)
  ps_quantiles : (float * float) list;
      (** [(p, minutes)] per requested quantile, ascending in [p];
          empty when no samples completed *)
  ps_death_before : death_before option;
      (** present iff [deadline_min] was given *)
}
(** One policy's lifetime distribution summary. *)

type dominance = {
  dom_a : string;
  dom_b : string;  (** the ordered pair (a before b in [policies]) *)
  dom_a_wins : int;  (** paired samples where [a] strictly outlives [b] *)
  dom_b_wins : int;  (** ... where [b] strictly outlives [a] *)
  dom_ties : int;  (** equal death steps, or both censored *)
  dom_a_fraction : float;  (** [dom_a_wins / mc_samples] *)
  dom_ci_low : float;  (** 95% normal-approximation CI on the fraction *)
  dom_ci_high : float;
}
(** Pairwise dominance on paired samples (both policies saw the same
    trace).  Lifetimes are compared at step resolution; a censored lane
    outlives any death, and two censored lanes tie. *)

type t = {
  mc_model : string;  (** {!model_name} of the sampled model *)
  mc_seed : int64;  (** root seed the lanes were split from *)
  mc_n_batteries : int;
  mc_samples_requested : int;
  mc_samples : int;
      (** samples actually completed and reduced — equals
          [mc_samples_requested] unless the budget tripped *)
  mc_tripped : Guard.Budget.trip option;
      (** why the run stopped early, if it did *)
  mc_policies : policy_summary list;  (** in [policies] order *)
  mc_dominance : dominance list;
      (** all ordered pairs [(i, j)], [i < j], in [policies] order *)
}
(** The estimation result ([Batsched.Report.montecarlo] renders it). *)

val default_policies : (string * Policy.t) list
(** Sequential, round robin and best-of — the paper's deterministic
    policies, all batchable. *)

val run :
  ?pool:Exec.Pool.t ->
  ?budget:Guard.Budget.t ->
  ?batch:bool ->
  ?switch_delay:int ->
  ?block:int ->
  ?quantiles:float list ->
  ?deadline_min:float ->
  ?policies:(string * Policy.t) list ->
  ?n_batteries:int ->
  seed:int64 ->
  samples:int ->
  model ->
  Dkibam.Discretization.t ->
  t
(** [run ~seed ~samples model disc] estimates the fleet distributions.

    [block] (default 2048, [>= 1]) sets how many samples are generated
    and batched per pass — a wall-clock/footprint knob that never
    affects the result.  [quantiles] (default the 5/25/50/75/95th
    percentiles) must lie strictly in (0, 1); duplicates are dropped
    and the list is sorted.  [policies] (default {!default_policies})
    must be non-empty; [Custom] policies work but fall back to the
    scalar simulator per lane.  [batch] overrides the
    [BATSCHED_NO_BATCH] environment default for A/B harnesses, and
    [switch_delay] is passed through to the simulator.

    Raises [Invalid_argument] on parameter violations and propagates
    {!Loads.Arrays.Not_representable} if the model generates epochs off
    the discretization grid (keep slot durations and currents on the
    grid — the model defaults are). *)
