(** Admissible per-position bounds for the optimal search (branch and
    bound).

    From a decision point [(y, local, bank)] of {!Optimal}'s search tree,
    three quantities can be bounded from the KiBaM physics alone, without
    exploring a single continuation:

    - {!lifetime_ub} — {b no} continuation can keep the system alive past
      this step.  Derivation: the total charge in all wells of the alive
      batteries ([sum n_gamma]) caps the units any schedule can serve —
      recovery only moves charge between wells, it never refills the
      total — while the load's epoch grid fixes, in absolute time, the
      {e fewest} units any continuation must have served by each step
      (cadence restarts after a death and the optional final-draw skip
      can only lose draws, and each of the at most [A] remaining deaths
      loses at most [switch_delay + 2] draws).  The first step whose
      minimum cumulative demand exceeds supply plus that slack is
      unreachable alive; this deliberately ignores the rate-capacity
      penalty (eq. (8) can kill a battery with charge still bound), so
      the bound is admissible.
    - {!lifetime_lb} — {b every} continuation keeps the system alive to
      at least this step.  Derivation: a draw of [cur] units lowers a
      battery's available charge by exactly [1000·cur] milli-units
      (recovery only raises it) and lowers its total charge by at most
      [cur], so killing battery [i] takes at least [d_i] draws; the
      system's last death therefore needs at least [sum d_i] draw events,
      and no execution's [k]-th draw can land before the cadence grid's
      [k]-th draw (restarts and skips only delay events).
    - {!stranded_lb} — {b every} continuation strands at least this much
      charge.  Derivation: dead batteries' total charge is frozen (the
      bound-well drain limit already stopped them), and the alive
      batteries can serve at most the canonical remaining demand.

    All three are monotone in the obvious direction under adding charge
    and invariant under permuting identical batteries — both properties
    are asserted in the test suite, together with admissibility along
    full search traces.  {!Optimal} composes them into objective-specific
    score bounds; results with pruning on are bit-identical to pruning
    off because only subtrees the bound proves dominated are cut. *)

type t
(** Precomputed suffix views of one load (minimum/maximum residual
    demand, residual draw counts, maximum residual draw current), built
    once per search.  O(number of epochs) to build, O(log epochs) per
    query. *)

val create :
  ?switch_delay:int ->
  ?allow_final_draw_skip:bool ->
  Dkibam.Discretization.t ->
  Loads.Cursor.t ->
  t
(** Defaults mirror {!Optimal.search}: [switch_delay = 1],
    [allow_final_draw_skip = false].  The flags matter: the skip widens
    the demand envelope (each epoch may serve one draw less), the delay
    sizes the per-death draw-loss slack. *)

val infinite : int
(** Sentinel for "no finite bound": the batteries cannot be forced dead
    ({!lifetime_ub}) or cannot be killed ({!lifetime_lb}) within the
    load.  Strictly larger than any step of any load, safely addable. *)

val lifetime_ub : t -> y:int -> local:int -> Bank.t -> int
(** Latest step any continuation from this position can die at, or
    {!infinite} when some continuation might outlive the load. *)

val lifetime_lb : t -> y:int -> local:int -> Bank.t -> int
(** Earliest step any continuation from this position can die at, or
    {!infinite} when no continuation can die within the load. *)

val stranded_lb : t -> y:int -> local:int -> Bank.t -> int
(** Minimum charge units ([sum n_gamma], dead batteries included) any
    continuation leaves stranded at system death. *)
