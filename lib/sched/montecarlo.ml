(* Monte Carlo fleet driver — see the .mli for the reduction layout and
   the determinism contract.

   Observability: [stoch.samples] counts device traces drawn,
   [stoch.traces] counts policy runs (samples x policies), and the
   whole estimation runs under the [montecarlo.run] span. *)
let c_samples = Obs.counter "stoch.samples"
let c_traces = Obs.counter "stoch.traces"
let s_run = Obs.span "montecarlo.run"

type model = Onoff of Stoch.Onoff.t | Env of Stoch.Env.t

let model_name = function Onoff _ -> "onoff" | Env _ -> "env"

let sample_load model ~seed =
  match model with
  | Onoff m -> Stoch.Onoff.sample m ~seed
  | Env m -> Stoch.Env.sample m ~seed

type death_before = {
  db_deadline_min : float;
  db_deaths : int;
  db_fraction : float;
  db_ci_low : float;
  db_ci_high : float;
}

type policy_summary = {
  ps_policy : string;
  ps_deaths : int;
  ps_survived : int;
  ps_mean : float;
  ps_stddev : float;
  ps_quantiles : (float * float) list;
  ps_death_before : death_before option;
}

type dominance = {
  dom_a : string;
  dom_b : string;
  dom_a_wins : int;
  dom_b_wins : int;
  dom_ties : int;
  dom_a_fraction : float;
  dom_ci_low : float;
  dom_ci_high : float;
}

type t = {
  mc_model : string;
  mc_seed : int64;
  mc_n_batteries : int;
  mc_samples_requested : int;
  mc_samples : int;
  mc_tripped : Guard.Budget.trip option;
  mc_policies : policy_summary list;
  mc_dominance : dominance list;
}

let default_policies =
  [
    ("sequential", Policy.Sequential);
    ("round robin", Policy.Round_robin);
    ("best-of", Policy.Best_of);
  ]

let run ?pool ?budget ?batch ?switch_delay ?(block = 2048)
    ?(quantiles = [ 0.05; 0.25; 0.5; 0.75; 0.95 ]) ?deadline_min
    ?(policies = default_policies) ?(n_batteries = 2) ~seed ~samples model
    (disc : Dkibam.Discretization.t) =
  if samples < 1 then invalid_arg "Sched.Montecarlo.run: need >= 1 sample";
  if block < 1 then invalid_arg "Sched.Montecarlo.run: block must be >= 1";
  if policies = [] then invalid_arg "Sched.Montecarlo.run: need >= 1 policy";
  List.iter
    (fun q ->
      if not (q > 0.0 && q < 1.0) then
        invalid_arg "Sched.Montecarlo.run: quantiles must lie in (0, 1)")
    quantiles;
  (match deadline_min with
  | Some d when not (d > 0.0) ->
      invalid_arg "Sched.Montecarlo.run: deadline_min must be positive"
  | _ -> ());
  Obs.time s_run @@ fun () ->
  let n_pol = List.length policies in
  let policy_arr = Array.of_list policies in
  let q_arr = Array.of_list (List.sort_uniq compare quantiles) in
  (* Per-policy streaming accumulators: constant memory however many
     samples run. *)
  let moments = Array.init n_pol (fun _ -> Stoch.Sketch.Moments.create ()) in
  let sketches =
    Array.init n_pol (fun _ -> Array.map Stoch.Sketch.P2.create q_arr)
  in
  let deaths = Array.make n_pol 0 in
  let survived = Array.make n_pol 0 in
  let early = Array.make n_pol 0 in
  let wins = Array.make_matrix n_pol n_pol 0 in
  let ties = Array.make_matrix n_pol n_pol 0 in
  let completed = ref 0 in
  let tripped =
    ref (match budget with Some b -> Guard.Budget.tripped b | None -> None)
  in
  while !tripped = None && !completed < samples do
    let b = min block (samples - !completed) in
    let base = !completed in
    (* Generation is serial on the submitting domain, lane seeds split
       from the root up front — sample [base + k] sees the same stream
       whatever block size or pool ran the rest of the fleet. *)
    let loads =
      Array.init b (fun k ->
          Obs.incr c_samples;
          Loads.Arrays.make ~time_step:disc.time_step
            ~charge_unit:disc.charge_unit
            (sample_load model ~seed:(Prng.Splitmix.split seed (base + k))))
    in
    (* Common random numbers: every policy runs the same sampled loads,
       so the dominance counts below compare paired lifetimes. *)
    let requests =
      Array.init (b * n_pol) (fun k ->
          {
            Simulator.req_load = loads.(k / n_pol);
            req_policy = snd policy_arr.(k mod n_pol);
          })
    in
    Obs.add c_traces (Array.length requests);
    (* A chunk well below the block's lane count, so a pool actually
       has work items to fan out; slot [i] of the result is request
       [i] regardless, per the run_batch contract. *)
    let results =
      Simulator.run_batch ?pool ?switch_delay ?batch ~chunk:1024 ~n_batteries
        disc requests
    in
    (* Serial reduction in sample order — the only fold the sketches
       ever see, hence independence from --jobs and batch/scalar. *)
    for k = 0 to b - 1 do
      let horizon =
        lazy
          (let lt = loads.(k).Loads.Arrays.load_time in
           Dkibam.Discretization.minutes_of_steps disc
             lt.(Array.length lt - 1))
      in
      for p = 0 to n_pol - 1 do
        let r = results.((k * n_pol) + p) in
        let minutes =
          match r.Simulator.res_lifetime_steps with
          | Some s ->
              deaths.(p) <- deaths.(p) + 1;
              let m = Dkibam.Discretization.minutes_of_steps disc s in
              (match deadline_min with
              | Some d when m < d -> early.(p) <- early.(p) + 1
              | _ -> ());
              m
          | None ->
              (* the batteries outlived the trace: a right-censored
                 observation, recorded at the trace's horizon *)
              survived.(p) <- survived.(p) + 1;
              Lazy.force horizon
        in
        Stoch.Sketch.Moments.add moments.(p) minutes;
        Array.iter (fun s -> Stoch.Sketch.P2.add s minutes) sketches.(p)
      done;
      for i = 0 to n_pol - 1 do
        for j = i + 1 to n_pol - 1 do
          let li = results.((k * n_pol) + i).Simulator.res_lifetime_steps in
          let lj = results.((k * n_pol) + j).Simulator.res_lifetime_steps in
          match (li, lj) with
          | None, None -> ties.(i).(j) <- ties.(i).(j) + 1
          | None, Some _ -> wins.(i).(j) <- wins.(i).(j) + 1
          | Some _, None -> () (* j's win is derived from the totals *)
          | Some si, Some sj ->
              if si > sj then wins.(i).(j) <- wins.(i).(j) + 1
              else if si = sj then ties.(i).(j) <- ties.(i).(j) + 1
        done
      done
    done;
    completed := !completed + b;
    (* Anytime cutoff: charge one work unit per sample, check between
       blocks — a count-based budget trips at a deterministic sample
       count (block granularity); the fully-reduced prefix is the
       partial estimate. *)
    match budget with
    | None -> ()
    | Some bu ->
        Guard.Budget.charge_segments bu b;
        tripped := Guard.Budget.tripped bu
  done;
  let n = !completed in
  let mc_policies =
    List.mapi
      (fun p (name, _) ->
        {
          ps_policy = name;
          ps_deaths = deaths.(p);
          ps_survived = survived.(p);
          ps_mean = Stoch.Sketch.Moments.mean moments.(p);
          ps_stddev = Stoch.Sketch.Moments.stddev moments.(p);
          ps_quantiles =
            Array.to_list
              (Array.mapi
                 (fun qi q ->
                   Option.map
                     (fun v -> (q, v))
                     (Stoch.Sketch.P2.quantile sketches.(p).(qi)))
                 q_arr)
            |> List.filter_map Fun.id;
          ps_death_before =
            Option.map
              (fun d ->
                let frac, lo, hi =
                  Stoch.Sketch.proportion_ci ~count:early.(p) ~total:n
                in
                {
                  db_deadline_min = d;
                  db_deaths = early.(p);
                  db_fraction = frac;
                  db_ci_low = lo;
                  db_ci_high = hi;
                })
              deadline_min;
        })
      policies
  in
  let mc_dominance = ref [] in
  for i = n_pol - 1 downto 0 do
    for j = n_pol - 1 downto i + 1 do
      let aw = wins.(i).(j) and tie = ties.(i).(j) in
      let frac, lo, hi = Stoch.Sketch.proportion_ci ~count:aw ~total:n in
      mc_dominance :=
        {
          dom_a = fst policy_arr.(i);
          dom_b = fst policy_arr.(j);
          dom_a_wins = aw;
          dom_b_wins = n - aw - tie;
          dom_ties = tie;
          dom_a_fraction = frac;
          dom_ci_low = lo;
          dom_ci_high = hi;
        }
        :: !mc_dominance
    done
  done;
  {
    mc_model = model_name model;
    mc_seed = seed;
    mc_n_batteries = n_batteries;
    mc_samples_requested = samples;
    mc_samples = n;
    mc_tripped = !tripped;
    mc_policies;
    mc_dominance = !mc_dominance;
  }
