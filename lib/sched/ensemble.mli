(** Lifetime distributions over ensembles of random loads.

    The paper closes with: "realistic random loads need to be analyzed.
    However, Uppaal Cora does not allow for probabilities to be included
    in the models ... no tools are available yet" (§7).  This module is
    that missing tool, done the direct way: draw an ensemble of random
    intermitted loads (the ILs r1/r2 family), run every scheduler on
    each, and report the lifetime {e distributions} — the quantity the
    authors' earlier work "Computing battery lifetime distributions"
    (ref. [10]) computes for a single battery, here generalized to
    scheduled multi-battery systems including the per-load optimal
    schedule.

    Everything is deterministic given the seed, including under a
    domain pool: per-load PRNG streams are split from the root seed up
    front, each load's work is pure given its stream, and the results
    are folded back in load order — so [run ?pool] is bit-identical to
    the serial path for every pool size (asserted in the test suite).

    Observability: with [Obs] enabled a run records the
    [ensemble.loads] counter and the [ensemble.run] / [ensemble.load]
    spans (the latter tagged with the load index in traces); see
    doc/OBSERVABILITY.md. *)

type stats = {
  mean : float;
  stddev : float;
  minimum : float;
  q25 : float;
  median : float;
  q75 : float;
  maximum : float;
}

val stats_of : float list -> stats
(** Summary statistics of a non-empty sample (quantiles by the nearest-rank
    method on the sorted sample). *)

type t = {
  n_loads : int;
  n_batteries : int;
  per_policy : (string * stats) list;
      (** lifetime distribution per policy, minutes *)
  top_gain_over_rr : stats;
      (** distribution of the per-load percentage gain of the {e top}
          schedule over round robin — the paper's Table 5 "difference"
          column, now as a distribution.  The top schedule is named by
          [gain_baseline]: the per-load optimum when the optimal search
          ran, otherwise merely best-of. *)
  best_of_matches_top_fraction : float;
      (** how often best-of already achieves the top schedule's
          lifetime.  Meaningful only when [gain_baseline = "optimal"];
          trivially 1.0 when best-of is itself the baseline. *)
  gain_baseline : string;
      (** what the optimal-dependent fields were measured against:
          ["optimal"] ([include_optimal:true], the default) or
          ["best-of"] ([include_optimal:false]).  Reports must print
          this — a best-of baseline silently read as "optimal" badly
          understates the gain headroom. *)
  budget_exhausted : int;
      (** loads whose optimal search tripped the [?budget] and fell
          back to its anytime result; 0 means every "optimal" figure
          is exactly optimal.  Reports must print this when non-zero —
          a truncated optimum silently read as optimal understates the
          achievable gain. *)
}

val run :
  ?pool:Exec.Pool.t ->
  ?budget:Guard.Budget.t ->
  ?seed:int64 ->
  ?n_loads:int ->
  ?jobs_per_load:int ->
  ?n_batteries:int ->
  ?include_optimal:bool ->
  ?bounds:bool ->
  ?extra_policies:(string * Policy.t) list ->
  Dkibam.Discretization.t ->
  unit ->
  t
(** [run disc ()] with defaults: seed 42, 50 loads of 60 random
    250/500 mA jobs (1-min jobs, 1-min idles), 2 batteries, optimal
    included.  Each load is long enough that the batteries always die.

    [pool] fans the per-load work (all policy runs plus the optimal
    search) out to the pool's domains, one load per task; results are
    bit-identical to the serial path (see module comment).

    With [include_optimal:false] the expensive per-load optimal search
    is skipped and the optimal-dependent fields are computed against
    best-of instead — [gain_baseline] records which one applied.

    [budget] is shared by every per-load optimal search (the policy
    simulations are unbudgeted).  Once it trips, the remaining searches
    return their anytime results immediately; the ensemble always
    completes, and [budget_exhausted] counts the affected loads.

    [bounds] is forwarded to every {!Optimal.search} (branch-and-bound
    pruning, on by default); per-load results are bit-identical either
    way, so the ensemble distributions are too.

    [extra_policies] appends named policies to the built-in three and
    reports their lifetime distributions alongside — the hook through
    which the receding-horizon planner ({!Horizon.policy}) joins the
    comparison.  Names must not collide with the built-ins or
    ["optimal"].  [Policy.Custom] entries run on the scalar simulator
    path per lane (see {!Simulator.run_batch}); the gain and
    best-of-match fields keep their round-robin/best-of baselines. *)
