type sample = {
  s_step : int;
  s_batteries : Dkibam.Battery.t array;
  s_serving : int option;
}

type outcome = {
  lifetime_steps : int option;
  deaths : (int * int) list;
  decisions : (int * int) list;
  serving_intervals : (int * int * int) list;
  final : Dkibam.Battery.t array;
  samples : sample list;
}

exception System_dead of int

let simulate ?initial ?trace_every ?(switch_delay = 1) ~n_batteries ~policy
    (disc : Dkibam.Discretization.t) (load : Loads.Arrays.t) =
  Loads.Arrays.check_compatible load ~time_step:disc.time_step
    ~charge_unit:disc.charge_unit;
  let bank = Bank.create ?initial ~n_batteries disc in
  let cursor = Loads.Cursor.make load in
  let deaths = ref [] and decisions = ref [] and intervals = ref [] in
  let samples = ref [] in
  let policy_state = ref 0 in
  let decision_no = ref 0 in
  let record_sample step serving =
    match trace_every with
    | None -> ()
    | Some _ ->
        samples :=
          { s_step = step; s_batteries = Bank.snapshot bank; s_serving = serving }
          :: !samples
  in
  (* The running absolute step; every recovery span goes through [tick],
     which chops it into chunks so trace samples land on the grid. *)
  let clock = ref 0 in
  let tick serving k =
    (match trace_every with
    | None -> Bank.tick_all bank k
    | Some every ->
        let rec go step remaining =
          if remaining > 0 then begin
            let next_grid = ((step / every) + 1) * every in
            let chunk = min remaining (next_grid - step) in
            Bank.tick_all bank chunk;
            if step + chunk = next_grid then record_sample (step + chunk) serving;
            go (step + chunk) (remaining - chunk)
          end
        in
        go !clock k);
    clock := !clock + k
  in
  let choose ~job_index ~epoch_index ~step ~mid_job =
    let ctx =
      {
        Policy.disc;
        job_index;
        epoch_index;
        step;
        mid_job;
        batteries = Bank.snapshot bank;
        alive = Bank.alive bank;
        cursor = Some cursor;
      }
    in
    let chosen = Policy.decide policy ~state:policy_state ctx in
    decisions := (!decision_no, chosen) :: !decisions;
    incr decision_no;
    chosen
  in
  let job_index = ref 0 in
  (* Serve one job epoch starting at absolute [start]; raises System_dead
     when the last battery dies. *)
  let serve_job y start len =
    (* [serve b local]: battery [b] serving from local offset [local];
       the draw cadence restarts here (the go_on semantics). *)
    let rec serve b local =
      let span_start = start + local in
      let sch = Loads.Cursor.schedule_from cursor y ~local in
      match Bank.serve ~tick:(tick (Some b)) bank ~b sch with
      | Bank.Completed -> intervals := (span_start, start + len, b) :: !intervals
      | Bank.Died off ->
          let local' = local + off in
          let death_step = start + local' in
          deaths := (b, death_step) :: !deaths;
          intervals := (span_start, death_step, b) :: !intervals;
          record_sample death_step None;
          if not (Bank.any_alive bank) then raise (System_dead death_step)
          else begin
            (* The emptied -> new_job -> go_on hand-over chain consumes
               [switch_delay] time steps before the replacement starts
               serving. *)
            let resume = local' + switch_delay in
            if resume < len then begin
              let b' =
                choose ~job_index:!job_index ~epoch_index:y ~step:death_step
                  ~mid_job:true
              in
              tick None switch_delay;
              serve b' resume
            end
            else if len > local' then
              (* hand-over outlives the job: burn the tail idle *)
              tick None (len - local')
          end
    in
    let b = choose ~job_index:!job_index ~epoch_index:y ~step:start ~mid_job:false in
    serve b 0;
    incr job_index
  in
  record_sample 0 None;
  let lifetime_steps =
    try
      for y = 0 to Loads.Cursor.epoch_count cursor - 1 do
        let len = Loads.Cursor.epoch_len cursor y in
        if Loads.Cursor.is_idle cursor y then tick None len
        else serve_job y !clock len
      done;
      None
    with System_dead s -> Some s
  in
  {
    lifetime_steps;
    deaths = List.rev !deaths;
    decisions = List.rev !decisions;
    serving_intervals = List.rev !intervals;
    final = Bank.snapshot bank;
    samples = List.rev !samples;
  }

(* ------------------------------------------------------------------ *)
(* Batched execution: many (load, policy) runs per call                *)
(* ------------------------------------------------------------------ *)

type batch_request = { req_load : Loads.Arrays.t; req_policy : Policy.t }
type batch_result = { res_lifetime_steps : int option; res_stranded : int }

(* The batch path defaults to on; the environment switch forces every
   lane down the scalar fallback so `dune runtest` and A/B comparisons
   can exercise it without touching call sites (mirrors
   BATSCHED_NO_BOUNDS for the branch-and-bound cuts). *)
let batch_default () =
  match Sys.getenv_opt "BATSCHED_NO_BATCH" with
  | None | Some "" -> true
  | Some _ -> false

let batch_policy_of = function
  | Policy.Sequential -> Some Batch.Engine.Sequential
  | Policy.Round_robin -> Some Batch.Engine.Round_robin
  | Policy.Best_of -> Some Batch.Engine.Best_of
  | Policy.Fixed sched -> Some (Batch.Engine.Fixed sched)
  | Policy.Custom _ -> None

let scalar_one ?switch_delay ~n_batteries disc r =
  let o =
    simulate ?switch_delay ~n_batteries ~policy:r.req_policy disc r.req_load
  in
  {
    res_lifetime_steps = o.lifetime_steps;
    res_stranded = Bank.stranded_units o.final;
  }

let run_batch ?pool ?switch_delay ?(chunk = 4096) ?batch ~n_batteries disc
    requests =
  if chunk < 1 then invalid_arg "Sched.Simulator.run_batch: chunk must be >= 1";
  let n = Array.length requests in
  let use_batch = match batch with Some b -> b | None -> batch_default () in
  (* Compile each distinct load once (lanes typically share loads: the
     ensemble packs one lane per policy per load).  A load whose
     compiled schedule is refused — the step-counter overflow guard —
     silently keeps its lanes on the scalar path, which handles long
     loads with the same int arithmetic the cursor iterator uses. *)
  let compiled_loads = ref [] and n_compiled = ref 0 in
  let slot_of load =
    let rec find = function
      | [] ->
          let slot =
            match Loads.Cursor.compile (Loads.Cursor.make load) with
            | Ok c ->
                let s = !n_compiled in
                incr n_compiled;
                Some (s, c)
            | Error _ -> None
          in
          compiled_loads := (load, slot) :: !compiled_loads;
          Option.map fst slot
      | (l, slot) :: rest ->
          if l == load then Option.map fst slot else find rest
    in
    find !compiled_loads
  in
  let lane_of i =
    if not use_batch then None
    else
      match batch_policy_of requests.(i).req_policy with
      | None -> None
      | Some policy -> (
          match slot_of requests.(i).req_load with
          | None -> None
          | Some load -> Some { Batch.Engine.load; policy })
  in
  let lanes = Array.init n lane_of in
  let loads = Array.make (max 1 !n_compiled) None in
  List.iter
    (fun (_, slot) ->
      match slot with Some (s, c) -> loads.(s) <- Some c | None -> ())
    !compiled_loads;
  let loads = Array.map Option.get (Array.sub loads 0 !n_compiled) in
  let batch_idx =
    Array.of_list
      (List.filter (fun i -> lanes.(i) <> None) (List.init n Fun.id))
  in
  let scalar_idx = List.filter (fun i -> lanes.(i) = None) (List.init n Fun.id) in
  (* Work items: the batched lanes chopped into [chunk]-lane batches
     (each its own State.t, so batches fan out across the pool without
     sharing mutable state), plus one item per scalar-fallback lane. *)
  let n_batch = Array.length batch_idx in
  let batch_chunks =
    List.init
      ((n_batch + chunk - 1) / chunk)
      (fun c -> Array.sub batch_idx (c * chunk) (min chunk (n_batch - (c * chunk))))
  in
  let run_chunk idxs =
    let chunk_lanes = Array.map (fun i -> Option.get lanes.(i)) idxs in
    let st =
      Batch.Engine.run ?switch_delay ~n_batteries disc ~loads ~lanes:chunk_lanes
    in
    Array.mapi
      (fun k i ->
        ( i,
          {
            res_lifetime_steps = Batch.State.lifetime_steps st k;
            res_stranded = Batch.State.stranded st k;
          } ))
      idxs
  in
  let work =
    List.map (fun idxs () -> run_chunk idxs) batch_chunks
    @ List.map
        (fun i () -> [| (i, scalar_one ?switch_delay ~n_batteries disc requests.(i)) |])
        scalar_idx
  in
  let outs =
    match pool with
    | Some p -> Exec.Pool.parallel_list_map ~chunk:1 p (fun f -> f ()) work
    | None -> List.map (fun f -> f ()) work
  in
  let results =
    Array.make n { res_lifetime_steps = None; res_stranded = 0 }
  in
  List.iter (Array.iter (fun (i, r) -> results.(i) <- r)) outs;
  results

let lifetime ?switch_delay ~n_batteries ~policy disc load =
  match (simulate ?switch_delay ~n_batteries ~policy disc load).lifetime_steps with
  | Some s -> Some (Dkibam.Discretization.minutes_of_steps disc s)
  | None -> None

let lifetime_exn ?switch_delay ~n_batteries ~policy disc load =
  match lifetime ?switch_delay ~n_batteries ~policy disc load with
  | Some t -> t
  | None ->
      failwith
        "Sched.Simulator.lifetime_exn: batteries outlived the load; extend \
         the horizon"
