type sample = {
  s_step : int;
  s_batteries : Dkibam.Battery.t array;
  s_serving : int option;
}

type outcome = {
  lifetime_steps : int option;
  deaths : (int * int) list;
  decisions : (int * int) list;
  serving_intervals : (int * int * int) list;
  final : Dkibam.Battery.t array;
  samples : sample list;
}

exception System_dead of int

let simulate ?initial ?trace_every ?(switch_delay = 1) ~n_batteries ~policy
    (disc : Dkibam.Discretization.t) (load : Loads.Arrays.t) =
  Loads.Arrays.check_compatible load ~time_step:disc.time_step
    ~charge_unit:disc.charge_unit;
  let bank = Bank.create ?initial ~n_batteries disc in
  let cursor = Loads.Cursor.make load in
  let deaths = ref [] and decisions = ref [] and intervals = ref [] in
  let samples = ref [] in
  let policy_state = ref 0 in
  let decision_no = ref 0 in
  let record_sample step serving =
    match trace_every with
    | None -> ()
    | Some _ ->
        samples :=
          { s_step = step; s_batteries = Bank.snapshot bank; s_serving = serving }
          :: !samples
  in
  (* The running absolute step; every recovery span goes through [tick],
     which chops it into chunks so trace samples land on the grid. *)
  let clock = ref 0 in
  let tick serving k =
    (match trace_every with
    | None -> Bank.tick_all bank k
    | Some every ->
        let rec go step remaining =
          if remaining > 0 then begin
            let next_grid = ((step / every) + 1) * every in
            let chunk = min remaining (next_grid - step) in
            Bank.tick_all bank chunk;
            if step + chunk = next_grid then record_sample (step + chunk) serving;
            go (step + chunk) (remaining - chunk)
          end
        in
        go !clock k);
    clock := !clock + k
  in
  let choose ~job_index ~epoch_index ~step ~mid_job =
    let ctx =
      {
        Policy.disc;
        job_index;
        epoch_index;
        step;
        mid_job;
        batteries = Bank.snapshot bank;
        alive = Bank.alive bank;
      }
    in
    let chosen = Policy.decide policy ~state:policy_state ctx in
    decisions := (!decision_no, chosen) :: !decisions;
    incr decision_no;
    chosen
  in
  let job_index = ref 0 in
  (* Serve one job epoch starting at absolute [start]; raises System_dead
     when the last battery dies. *)
  let serve_job y start len =
    (* [serve b local]: battery [b] serving from local offset [local];
       the draw cadence restarts here (the go_on semantics). *)
    let rec serve b local =
      let span_start = start + local in
      let sch = Loads.Cursor.schedule_from cursor y ~local in
      match Bank.serve ~tick:(tick (Some b)) bank ~b sch with
      | Bank.Completed -> intervals := (span_start, start + len, b) :: !intervals
      | Bank.Died off ->
          let local' = local + off in
          let death_step = start + local' in
          deaths := (b, death_step) :: !deaths;
          intervals := (span_start, death_step, b) :: !intervals;
          record_sample death_step None;
          if not (Bank.any_alive bank) then raise (System_dead death_step)
          else begin
            (* The emptied -> new_job -> go_on hand-over chain consumes
               [switch_delay] time steps before the replacement starts
               serving. *)
            let resume = local' + switch_delay in
            if resume < len then begin
              let b' =
                choose ~job_index:!job_index ~epoch_index:y ~step:death_step
                  ~mid_job:true
              in
              tick None switch_delay;
              serve b' resume
            end
            else if len > local' then
              (* hand-over outlives the job: burn the tail idle *)
              tick None (len - local')
          end
    in
    let b = choose ~job_index:!job_index ~epoch_index:y ~step:start ~mid_job:false in
    serve b 0;
    incr job_index
  in
  record_sample 0 None;
  let lifetime_steps =
    try
      for y = 0 to Loads.Cursor.epoch_count cursor - 1 do
        let len = Loads.Cursor.epoch_len cursor y in
        if Loads.Cursor.is_idle cursor y then tick None len
        else serve_job y !clock len
      done;
      None
    with System_dead s -> Some s
  in
  {
    lifetime_steps;
    deaths = List.rev !deaths;
    decisions = List.rev !decisions;
    serving_intervals = List.rev !intervals;
    final = Bank.snapshot bank;
    samples = List.rev !samples;
  }

let lifetime ?switch_delay ~n_batteries ~policy disc load =
  match (simulate ?switch_delay ~n_batteries ~policy disc load).lifetime_steps with
  | Some s -> Some (Dkibam.Discretization.minutes_of_steps disc s)
  | None -> None

let lifetime_exn ?switch_delay ~n_batteries ~policy disc load =
  match lifetime ?switch_delay ~n_batteries ~policy disc load with
  | Some t -> t
  | None ->
      failwith
        "Sched.Simulator.lifetime_exn: batteries outlived the load; extend \
         the horizon"
