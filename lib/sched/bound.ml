(* Admissible bounds from the KiBaM physics — see the .mli for the
   derivations.  Everything load-shaped is precomputed here as suffix
   arrays so a per-position query costs O(batteries + log epochs). *)

type t = {
  disc : Dkibam.Discretization.t;
  cursor : Loads.Cursor.t;
  switch_delay : int;
  skip01 : int;  (* 1 when the final-draw skip is a legal choice *)
  min_units_after : int array;
      (* [e] -> fewest units epochs [e..] can be made to demand *)
  draws_after : int array;  (* [e] -> canonical draw count of epochs [e..] *)
  max_cur_after : int array;  (* [e] -> largest per-draw current in [e..] *)
}

let infinite = max_int / 4

let create ?(switch_delay = 1) ?(allow_final_draw_skip = false) disc cursor =
  let e_count = Loads.Cursor.epoch_count cursor in
  let skip01 = if allow_final_draw_skip then 1 else 0 in
  let min_units_after = Array.make (e_count + 1) 0 in
  let draws_after = Array.make (e_count + 1) 0 in
  let max_cur_after = Array.make (e_count + 1) 0 in
  for e = e_count - 1 downto 0 do
    let sch = Loads.Cursor.schedule cursor e in
    let min_draws = if sch.cur = 0 then 0 else max 0 (sch.draws - skip01) in
    min_units_after.(e) <- min_units_after.(e + 1) + (min_draws * sch.cur);
    draws_after.(e) <- draws_after.(e + 1) + sch.draws;
    max_cur_after.(e) <- max max_cur_after.(e + 1) sch.cur
  done;
  { disc; cursor; switch_delay; skip01; min_units_after; draws_after;
    max_cur_after }

(* Least [e] in [lo, hi] with [above e] (monotone: false then true);
   callers guarantee [above hi]. *)
let rec bisect above lo hi =
  if lo >= hi then hi
  else
    let mid = (lo + hi) / 2 in
    if above mid then bisect above lo mid else bisect above (mid + 1) hi

let alive_units bank =
  List.fold_left
    (fun acc i -> acc + (Bank.battery bank i).Dkibam.Battery.n_gamma)
    0 (Bank.alive bank)

(* Step of the draw that takes epoch [e]'s minimum cumulative demand
   past [over] units, restarting the cadence at [local]; the caller
   guarantees the epoch's own minimum demand does exceed [over]. *)
let crossing_step t e ~local ~over =
  let sch = Loads.Cursor.schedule_from t.cursor e ~local in
  let k = (over / sch.cur) + 1 + t.skip01 in
  Loads.Cursor.epoch_start t.cursor e + local + (k * sch.ct)

(* Constraint 1: total charge.  Earliest step whose minimum cumulative
   demand exceeds the alive batteries' total charge plus the per-death
   draw-loss slack, minus one; [infinite] when the whole remaining
   demand fits. *)
let charge_ub t ~y ~local bank alive cmax =
  (* supply + the draws the demand envelope can lose: each of the
     at most [A] remaining deaths costs one fatal draw plus at most
     [switch_delay] cadence-restart draws (one extra for margin) *)
  let slack = List.length alive * (t.switch_delay + 2) * cmax in
  let u = alive_units bank + slack in
  let sch_y = Loads.Cursor.schedule_from t.cursor y ~local in
  let min_draws_y =
    if sch_y.cur = 0 then 0 else max 0 (sch_y.draws - t.skip01)
  in
  let units_y = min_draws_y * sch_y.cur in
  if units_y + t.min_units_after.(y + 1) <= u then infinite
  else if units_y > u then (crossing_step t y ~local ~over:u) - 1
  else begin
    let u = u - units_y in
    let base = t.min_units_after.(y + 1) in
    let e =
      bisect
        (fun e -> base - t.min_units_after.(e + 1) > u)
        (y + 1)
        (Loads.Cursor.epoch_count t.cursor - 1)
    in
    crossing_step t e ~local:0 ~over:(u - (base - t.min_units_after.(e))) - 1
  end

(* Constraint 2: available charge against the recovery-rate ceiling.
   Serving [D] units costs exactly [1000*D] milli-units of available
   charge; recovery refunds [1000 - c] per event, and an alive battery
   holding [n] total units can never be higher than
   [m_cap = (c*n - 1) / (1000 - c)] (any higher is empty), so its event
   cadence is at least [recov_time (m_cap + cmax)] steps — a per-step
   gain ceiling that only tightens as the battery drains.  The first
   step where the minimum cumulative demand outruns available charge
   plus maximal recovery gain (plus the per-death slacks) is therefore
   unreachable alive.  All arithmetic is in micro-units (milli * 1000)
   so the per-step gain ceiling can be rounded up, not down. *)
let avail_ub t ~y ~local bank alive cmax =
  let disc = t.disc in
  let c = disc.Dkibam.Discretization.c_milli in
  let n_units = disc.Dkibam.Discretization.n_units in
  let a = List.length alive in
  (* gain ceiling: [gnum] micro-units per step (rounded up) plus one
     whole event per battery of constant margin *)
  let gnum, gcon =
    List.fold_left
      (fun (gnum, gcon) i ->
        let b = Bank.battery bank i in
        let m_cap = ((c * b.Dkibam.Battery.n_gamma) - 1) / (1000 - c) in
        (* weird hand-built initial states can sit above the alive
           ceiling until their first draw; never below the actual m *)
        let m_ceil =
          min n_units (max m_cap b.Dkibam.Battery.m_delta + cmax)
        in
        if m_ceil < 2 then (gnum, gcon)
        else
          let rt = Dkibam.Discretization.recov_time disc m_ceil in
          (gnum + (((1000 - c) * 1000) + rt - 1) / rt, gcon + (1000 - c)))
      (0, 0) alive
  in
  (* supply in micro-units: available now, the per-death fatal-draw
     overdraw, the per-death cadence-restart losses, and the constant
     rounding margin of the gain ceiling *)
  let supply =
    List.fold_left
      (fun acc i ->
        acc + (1000 * Dkibam.Battery.available_milli_units disc (Bank.battery bank i)))
      0 alive
    + (1000 * a * (t.switch_delay + 3) * cmax * 1000)
    + (1000 * gcon)
  in
  let now = Loads.Cursor.epoch_start t.cursor y + local in
  let e_count = Loads.Cursor.epoch_count t.cursor in
  (* Scan epochs from [y]: [served] accumulates the minimum demand (in
     units) up to the start of the epoch under scan; within a serving
     epoch demand rises linearly per draw while the gain ceiling rises
     linearly per step, so the first violated epoch pins the crossing
     draw by a division. *)
  let exception Cross of int in
  let check_epoch e ~local ~served =
    let sch = Loads.Cursor.schedule_from t.cursor e ~local in
    let es = Loads.Cursor.epoch_start t.cursor e in
    if sch.cur > 0 then begin
      let min_draws = max 0 (sch.draws - t.skip01) in
      let t_end = es + local + (sch.draws * sch.ct) in
      let demand_end = 1_000_000 * (served + (min_draws * sch.cur)) in
      if demand_end > supply + (gnum * (t_end - now)) then begin
        (* crossing inside this epoch: least k >= 1 with
           10^6*(served + (k - skip01)*cur) > supply + gnum*(es+local+k*ct - now) *)
        let coeff = (1_000_000 * sch.cur) - (gnum * sch.ct) in
        (* demand_end > RHS(t_end) and no crossing at entry force a
           positive within-epoch slope *)
        if coeff > 0 then begin
          let rhs =
            supply
            + (gnum * (es + local - now))
            - (1_000_000 * (served - (t.skip01 * sch.cur)))
          in
          let k = max 1 ((rhs / coeff) + 1) in
          if k <= sch.draws then raise (Cross (es + local + (k * sch.ct) - 1))
        end
      end
    end;
    served + if sch.cur = 0 then 0 else max 0 (sch.draws - t.skip01) * sch.cur
  in
  match
    let served = ref (check_epoch y ~local ~served:0) in
    for e = y + 1 to e_count - 1 do
      served := check_epoch e ~local:0 ~served:!served
    done
  with
  | () -> infinite
  | exception Cross s -> s

let lifetime_ub t ~y ~local bank =
  let alive = Bank.alive bank in
  if alive = [] then 0
  else
    let cmax = t.max_cur_after.(y) in
    if cmax = 0 then infinite
    else
      min
        (charge_ub t ~y ~local bank alive cmax)
        (avail_ub t ~y ~local bank alive cmax)

let lifetime_lb t ~y ~local bank =
  let cmax = t.max_cur_after.(y) in
  if cmax = 0 then infinite
  else begin
    (* fewest draw events that can kill the whole bank: per battery,
       the available charge drops by at most 1000*cmax milli-units per
       draw (eq. (8) route) and the total charge by at most cmax units
       (insufficient-charge route) *)
    let d_min =
      List.fold_left
        (fun acc i ->
          let b = Bank.battery bank i in
          let avail = Dkibam.Battery.available_milli_units t.disc b in
          let d_empty =
            if avail <= 0 then 1
            else (avail + (1000 * cmax) - 1) / (1000 * cmax)
          in
          let d_lack = (b.Dkibam.Battery.n_gamma / cmax) + 1 in
          acc + max 1 (min d_empty d_lack))
        0 (Bank.alive bank)
    in
    if d_min = 0 then 0
    else begin
      let sch_y = Loads.Cursor.schedule_from t.cursor y ~local in
      if d_min > sch_y.draws + t.draws_after.(y + 1) then infinite
      else if d_min <= sch_y.draws then
        Loads.Cursor.epoch_start t.cursor y + local + (d_min * sch_y.ct)
      else begin
        let rem = d_min - sch_y.draws in
        let base = t.draws_after.(y + 1) in
        let e =
          bisect
            (fun e -> base - t.draws_after.(e + 1) >= rem)
            (y + 1)
            (Loads.Cursor.epoch_count t.cursor - 1)
        in
        let k = rem - (base - t.draws_after.(e)) in
        Loads.Cursor.epoch_start t.cursor e
        + (k * (Loads.Cursor.schedule t.cursor e).ct)
      end
    end
  end

let stranded_lb t ~y ~local bank =
  let n = Bank.size bank in
  let s_dead = ref 0 and s_alive = ref 0 in
  for i = 0 to n - 1 do
    let units = (Bank.battery bank i).Dkibam.Battery.n_gamma in
    if Bank.is_dead bank i then s_dead := !s_dead + units
    else s_alive := !s_alive + units
  done;
  let sch_y = Loads.Cursor.schedule_from t.cursor y ~local in
  let r_max =
    (sch_y.draws * sch_y.cur) + Loads.Cursor.draw_units_after t.cursor y
  in
  !s_dead + max 0 (!s_alive - r_max)
