(** A process-wide, bounded, concurrent memo store for exact search
    values — the table the daemon's searches share across requests and
    worker domains.

    {!Optimal.search} and {!Optimal.plan} memoize {e exact} subtree /
    window values: integers that do not depend on exploration order,
    bound mode, budget warmth or which domain computed them.  That
    exactness (established by the bound/pool/checkpoint differential
    suites) is what makes the entries sound to share between unrelated
    searches: a hit returns the same integer a fresh recompute would
    derive, so results stay bit-identical with the store cold, warm, or
    evicted — asserted by [test/test_memo.ml].

    Entries live under a {!scope}: a fingerprint string digesting every
    search input the values depend on (load, pack, discretization,
    objective, window kind).  Two scopes with different fingerprints
    never observe each other's entries, so a shared store can serve
    searches over different loads at once.

    The store is safe for concurrent use from any number of domains
    (sharded hashtables, one mutex per shard, hold times of one probe)
    and bounded: [capacity] caps the total entry count, enforced by
    second-chance (CLOCK) eviction — an approximation of LRU with O(1)
    amortized insert cost.  Eviction only ever forgets work; a
    re-queried key is recomputed to the identical value.

    Statistics are exact even under concurrency (atomic counters;
    hits + misses = lookups once callers quiesce) and mirrored into the
    [memo.*] Obs family ([memo.lookups] / [memo.hits] / [memo.misses] /
    [memo.insertions] / [memo.evictions] counters, [memo.entries]
    high-watermark gauge); see doc/OBSERVABILITY.md. *)

type t

val create : ?shards:int -> capacity:int -> unit -> t
(** [create ~capacity ()] bounds the store at [capacity >= 1] entries
    total, spread over [shards] (default 16, clamped to [capacity])
    independently locked shards. *)

val capacity : t -> int

val entries : t -> int
(** Current entry count (exact; the eviction loop keeps it
    [<= capacity]). *)

type scope
(** A store restricted to one fingerprint: the handle search code holds.
    Cheap to build per request. *)

val scope : t -> fingerprint:string -> scope
(** Keys under [fingerprint] are disjoint from every other
    fingerprint's. The fingerprint must digest {e all} inputs the memo
    values depend on (the checkpoint-layer input fingerprint, for full
    searches). *)

val scope_equal : scope -> scope -> bool
(** Same store (physically) and same fingerprint — the test cached
    planner entries use to decide reuse. *)

val find : scope -> int array -> int option
(** Marks the entry recently-used (second-chance bit) and counts a hit
    or a miss. *)

val add : scope -> int array -> int -> unit
(** Insert, evicting second-chance victims while over capacity.
    First-writer-wins — values are exact, so concurrent writers always
    carry the same value. *)

type stats = {
  st_entries : int;
  st_capacity : int;
  st_lookups : int;
  st_hits : int;
  st_misses : int;
  st_insertions : int;
  st_evictions : int;
}

val stats : t -> stats
(** A consistent-enough snapshot: each field is atomically read;
    [st_hits + st_misses = st_lookups] holds exactly when no lookup is
    mid-flight. *)
