type job = { duration : float; current : float; release : float; deadline : float }

let job ?(release = 0.0) ?(deadline = infinity) ~duration ~current () =
  if not (duration > 0.0) then
    invalid_arg "Job_placement.job: duration must be positive";
  if not (current > 0.0) then
    invalid_arg "Job_placement.job: current must be positive";
  if release < 0.0 then invalid_arg "Job_placement.job: negative release";
  if deadline < release +. duration then
    invalid_arg "Job_placement.job: window shorter than the job";
  { duration; current; release; deadline }

type placement = {
  starts : float list;
  completion : float;
  final : Dkibam.Battery.t;
  headroom : float;
}

type outcome =
  | Feasible of placement
  | Battery_dies
  | Window_infeasible of int

(* Discretized job: duration, precomputed draw schedule, window in steps. *)
type djob = { steps : int; sch : Loads.Cursor.schedule; rel : int; dl : int }

let discretize (disc : Dkibam.Discretization.t) jobs =
  List.map
    (fun (j : job) ->
      let steps = Dkibam.Discretization.steps_of_minutes disc j.duration in
      (* reuse the load encoder's exact-fraction logic through Arrays, and
         the kernel's cadence arithmetic through Cursor *)
      let cursor =
        Loads.Cursor.make
          (Loads.Arrays.make ~time_step:disc.time_step
             ~charge_unit:disc.charge_unit
             (Loads.Epoch.job ~current:j.current ~duration:j.duration))
      in
      let rel =
        int_of_float (Float.ceil ((j.release /. disc.time_step) -. 1e-9))
      in
      let dl =
        if j.deadline = infinity then max_int
        else int_of_float (Float.floor ((j.deadline /. disc.time_step) +. 1e-9))
      in
      { steps; sch = Loads.Cursor.schedule cursor 0; rel; dl })
    jobs

(* Serve one job with the battery from a given start; None if it dies. *)
let serve disc (j : djob) battery =
  let bank = Bank.create ~initial:[| battery |] ~n_batteries:1 disc in
  match Bank.serve bank ~b:0 j.sch with
  | Bank.Completed -> Some (Bank.battery bank 0)
  | Bank.Died _ -> None

module Key = struct
  type t = int * int * int * int * int
  (* job index, step, battery n/m/clock *)

  let equal = ( = )
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

let optimize ?(grid = 0.5) (disc : Dkibam.Discretization.t) jobs =
  if jobs = [] then invalid_arg "Job_placement.optimize: no jobs";
  let djobs = Array.of_list (discretize disc jobs) in
  let grid_steps = max 1 (Dkibam.Discretization.steps_of_minutes disc grid) in
  let n = Array.length djobs in
  (* quick window sanity: earliest possible completion per job *)
  let earliest = ref 0 in
  let window_bad = ref None in
  Array.iteri
    (fun k j ->
      earliest := max !earliest j.rel + j.steps;
      if j.dl < max_int && !earliest > j.dl && !window_bad = None then
        window_bad := Some k;
      earliest := !earliest - 0 (* completion tracked in [earliest] *))
    djobs;
  match !window_bad with
  | Some k -> Window_infeasible k
  | None ->
      let memo : (float * (int list * Dkibam.Battery.t * int) option) Tbl.t =
        Tbl.create 1024
      in
      (* best placement from job k onward, battery state b at step s;
         returns (headroom, Some (starts, final, completion)) or -inf/None *)
      let rec best k s (b : Dkibam.Battery.t) =
        if k >= n then
          (Dkibam.Battery.available_charge disc b, Some ([], b, s))
        else begin
          let key = (k, s, b.Dkibam.Battery.n_gamma, b.m_delta, b.recov_clock) in
          match Tbl.find_opt memo key with
          | Some r -> r
          | None ->
              let j = djobs.(k) in
              let lo = max s j.rel in
              (* align the first candidate up to the grid *)
              let lo = (lo + grid_steps - 1) / grid_steps * grid_steps in
              let hi = if j.dl = max_int then lo + (20 * grid_steps) else j.dl - j.steps in
              let result = ref (neg_infinity, None) in
              let start = ref lo in
              while !start <= hi do
                let b_at = Dkibam.Battery.tick_many disc (!start - s) b in
                (match serve disc j b_at with
                | Some b' -> (
                    let v, rest = best (k + 1) (!start + j.steps) b' in
                    match rest with
                    | Some (starts, final, completion) when v > fst !result ->
                        result := (v, Some (!start :: starts, final, completion))
                    | _ -> ())
                | None -> ());
                start := !start + grid_steps
              done;
              Tbl.replace memo key !result;
              !result
        end
      in
      let v, r = best 0 0 (Dkibam.Battery.full disc) in
      (match r with
      | None -> Battery_dies
      | Some (starts, final, completion) ->
          Feasible
            {
              starts = List.map (Dkibam.Discretization.minutes_of_steps disc) starts;
              completion = Dkibam.Discretization.minutes_of_steps disc completion;
              final;
              headroom = v;
            })

let asap (disc : Dkibam.Discretization.t) jobs =
  if jobs = [] then invalid_arg "Job_placement.asap: no jobs";
  let djobs = discretize disc jobs in
  let rec go k s b starts = function
    | [] ->
        Feasible
          {
            starts = List.rev_map (Dkibam.Discretization.minutes_of_steps disc) starts;
            completion = Dkibam.Discretization.minutes_of_steps disc s;
            final = b;
            headroom = Dkibam.Battery.available_charge disc b;
          }
    | (j : djob) :: rest ->
        let start = max s j.rel in
        if j.dl < max_int && start + j.steps > j.dl then Window_infeasible k
        else begin
          let b = Dkibam.Battery.tick_many disc (start - s) b in
          match serve disc j b with
          | None -> Battery_dies
          | Some b' -> go (k + 1) (start + j.steps) b' (start :: starts) rest
        end
  in
  go 0 0 (Dkibam.Battery.full disc) [] djobs
