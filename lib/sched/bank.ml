type t = {
  disc : Dkibam.Discretization.t;
  batteries : Dkibam.Battery.t array;
  dead : bool array;
}

let create ?initial ~n_batteries disc =
  if n_batteries < 1 then invalid_arg "Sched.Bank: need >= 1 battery";
  let batteries =
    match initial with
    | Some a ->
        if Array.length a <> n_batteries then
          invalid_arg "Sched.Bank: initial length mismatch";
        Array.copy a
    | None -> Array.init n_batteries (fun _ -> Dkibam.Battery.full disc)
  in
  { disc; batteries; dead = Array.make n_batteries false }

let of_parts disc ~batteries ~dead =
  if Array.length batteries <> Array.length dead then
    invalid_arg "Sched.Bank.of_parts: length mismatch";
  if Array.length batteries = 0 then invalid_arg "Sched.Bank: need >= 1 battery";
  { disc; batteries = Array.copy batteries; dead = Array.copy dead }

let copy t =
  { t with batteries = Array.copy t.batteries; dead = Array.copy t.dead }

let disc t = t.disc
let size t = Array.length t.batteries
let battery t i = t.batteries.(i)
let snapshot t = Array.copy t.batteries
let is_dead t i = t.dead.(i)

let alive t =
  List.filter (fun i -> not t.dead.(i)) (List.init (size t) Fun.id)

let any_alive t = Array.exists not t.dead
let all_dead t = Array.for_all Fun.id t.dead

let tick_all t k =
  Array.iteri
    (fun i b -> t.batteries.(i) <- Dkibam.Battery.tick_many t.disc k b)
    t.batteries

let draw_from t i ~cur =
  let b = t.batteries.(i) in
  let fatal =
    b.Dkibam.Battery.n_gamma < cur
    ||
    let after = Dkibam.Battery.draw t.disc ~cur b in
    t.batteries.(i) <- after;
    Dkibam.Battery.is_empty t.disc after
  in
  if fatal then t.dead.(i) <- true;
  fatal

let stranded_units batteries =
  Array.fold_left
    (fun acc (b : Dkibam.Battery.t) -> acc + b.n_gamma)
    0 batteries

let stranded t = stranded_units t.batteries

let alive_available_milli t =
  let acc = ref 0 in
  Array.iteri
    (fun i b ->
      if not t.dead.(i) then
        acc := !acc + Dkibam.Battery.available_milli_units t.disc b)
    t.batteries;
  !acc

type serve_outcome = Completed | Died of int

let serve ?tick t ~b (sch : Loads.Cursor.schedule) =
  let tick = match tick with Some f -> f | None -> tick_all t in
  let rec go i =
    if i > sch.draws then begin
      if sch.rest > 0 then tick sch.rest;
      Completed
    end
    else begin
      tick sch.ct;
      if draw_from t b ~cur:sch.cur then Died (i * sch.ct) else go (i + 1)
    end
  in
  go 1
