(* The all-integer dKiBaM transition arithmetic, shared verbatim by the
   boxed scalar path (Battery) and the struct-of-arrays batch engine
   (Batch.Engine).  Keeping the recurrences here — and only here — is
   what lets the batch engine promise bit-identical results: both paths
   call the same code, so they cannot drift. *)

let tick (d : Discretization.t) ~m ~clock ~steps =
  if steps < 0 then invalid_arg "Dkibam.Kernel.tick: negative step count";
  (* Jump from recovery event to recovery event instead of stepping. *)
  let recov = d.recov_time in
  let rec go k m clock =
    if k = 0 then (m, clock)
    else if m < 2 then (m, clock + k)
    else begin
      (* an already-overdue recovery (possible for hand-built states)
         fires on the next step, like a single tick *)
      let due = max 1 (recov.(m) - clock) in
      if due > k then (m, clock + k) else go (k - due) (m - 1) 0
    end
  in
  go steps m clock

let draw (d : Discretization.t) ~n ~m ~clock ~cur =
  (* The use_charge edge: the recovery clock resets exactly when
     recovery was not already running (m <= 1 before the draw), and an
     already-due recovery fires immediately afterwards — the recov_time
     table shrinks as m grows, so the invariant c_recov <= recov_time[m]
     can be violated by the jump and must be re-established at the same
     instant.  A single firing resets the clock to 0 < recov_time[m'],
     so one pass suffices. *)
  let clock = if m <= 1 then 0 else clock in
  let n = n - cur and m = m + cur in
  if m >= 2 && clock >= d.recov_time.(m) then (n, m - 1, 0)
  else (n, m, clock)

let is_empty = Discretization.is_empty
let available_milli = Discretization.available_milli_units
