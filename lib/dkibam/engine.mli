(** Single-battery dKiBaM discharge engine.

    Replays the load arrays against one battery exactly as the TA-KiBaM
    network would with a single battery (the validation setting of paper
    §5 / Tables 3–4): during a job epoch a draw of [cur] units occurs on
    every cadence interval (the discharge clock resets at each job start,
    as [go_on] does), recovery runs continuously, and emptiness is
    observed at draw instants — the battery dies at the draw that makes
    eq. (8) hold.

    Both entry points are thin drivers over the {!Loads.Cursor} event
    stream: the cadence arithmetic lives in the cursor, shared with the
    multi-battery engines in [Sched].

    Observability: with [Obs] enabled, {!run} (and {!lifetime} through
    it) records the [engine.runs] / [engine.steps] / [engine.draws] /
    [engine.recovery_spans] / [engine.deaths] counters, synced once per
    run so the per-step loop stays untouched; see
    doc/OBSERVABILITY.md. *)

type outcome =
  | Dies_at_step of int * Battery.t
      (** absolute time step of the fatal draw, and the state then *)
  | Survives of Battery.t  (** the load ended first *)

val run : ?initial:Battery.t -> Discretization.t -> Loads.Arrays.t -> outcome
(** Run the load to its end or to the battery's death ([initial]
    defaults to a full battery).  Raises [Invalid_argument] if the load
    arrays and the discretization disagree on [time_step] or
    [charge_unit]. *)

val lifetime : ?initial:Battery.t -> Discretization.t -> Loads.Arrays.t -> float option
(** Death time in minutes, [None] if the battery outlives the load. *)

val lifetime_exn : ?initial:Battery.t -> Discretization.t -> Loads.Arrays.t -> float
(** {!lifetime}, failing if the battery outlives the load (extend the
    load horizon instead of trusting a truncated lifetime). *)

val trace :
  ?initial:Battery.t ->
  ?sample_every:int ->
  Discretization.t ->
  Loads.Arrays.t ->
  max_steps:int ->
  (int * Battery.t) list
(** Battery state sampled every [sample_every] steps (default 10) and at
    every draw, until death, end of load, or [max_steps].  Times are
    absolute steps. *)
