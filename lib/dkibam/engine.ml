type outcome = Dies_at_step of int * Battery.t | Survives of Battery.t

(* Observability: event totals are accumulated in plain local refs
   (cheap enough to keep unconditional) and handed to lib/obs once per
   run, so the disabled-mode cost is one flag read at the end. *)
let c_runs = Obs.counter "engine.runs"
let c_steps = Obs.counter "engine.steps"
let c_draws = Obs.counter "engine.draws"
let c_recovery = Obs.counter "engine.recovery_spans"
let c_deaths = Obs.counter "engine.deaths"

(* Both entry points are thin drivers over [Loads.Cursor]: the cursor owns
   every piece of epoch/cadence arithmetic, the driver only ticks and
   draws one battery. *)

let run ?initial (d : Discretization.t) (load : Loads.Arrays.t) =
  Loads.Arrays.check_compatible load ~time_step:d.time_step
    ~charge_unit:d.charge_unit;
  let initial = match initial with Some b -> b | None -> Battery.full d in
  let cursor = Loads.Cursor.make load in
  let steps = ref 0 and draws = ref 0 and recovery = ref 0 in
  let finish outcome =
    Obs.incr c_runs;
    Obs.add c_steps !steps;
    Obs.add c_draws !draws;
    Obs.add c_recovery !recovery;
    (match outcome with
    | Dies_at_step _ -> Obs.incr c_deaths
    | Survives _ -> ());
    outcome
  in
  let rec go pos b =
    match Loads.Cursor.next cursor pos with
    | None -> finish (Survives b)
    | Some (Loads.Cursor.Idle k, pos') ->
        steps := !steps + k;
        incr recovery;
        go pos' (Battery.tick_many d k b)
    | Some (Loads.Cursor.Epoch_end, pos') -> go pos' b
    | Some (Loads.Cursor.Draw cur, pos') ->
        incr draws;
        if b.Battery.n_gamma < cur then
          finish (Dies_at_step (Loads.Cursor.step cursor pos', b))
        else begin
          let b = Battery.draw d ~cur b in
          if Battery.is_empty d b then
            finish (Dies_at_step (Loads.Cursor.step cursor pos', b))
          else go pos' b
        end
  in
  if Battery.is_empty d initial then finish (Dies_at_step (0, initial))
  else go (Loads.Cursor.start cursor) initial

let lifetime ?initial d load =
  match run ?initial d load with
  | Dies_at_step (s, _) -> Some (Discretization.minutes_of_steps d s)
  | Survives _ -> None

let lifetime_exn ?initial d load =
  match lifetime ?initial d load with
  | Some t -> t
  | None ->
      failwith
        "Dkibam.Engine.lifetime_exn: battery outlived the load; extend the \
         load horizon"

let trace ?initial ?(sample_every = 10) (d : Discretization.t)
    (load : Loads.Arrays.t) ~max_steps =
  if sample_every <= 0 then invalid_arg "Dkibam.Engine.trace: sample_every <= 0";
  Loads.Arrays.check_compatible load ~time_step:d.time_step
    ~charge_unit:d.charge_unit;
  let initial = match initial with Some b -> b | None -> Battery.full d in
  let cursor = Loads.Cursor.make load in
  let samples = ref [ (0, initial) ] in
  let push step b = samples := (step, b) :: !samples in
  (* Step-by-step replay: clarity over speed, traces are bounded anyway. *)
  let exception Done in
  let step = ref 0 and b = ref initial in
  let tick_one () =
    if !step >= max_steps then raise Done;
    incr step;
    b := Battery.tick d !b
  in
  let quiet_steps k =
    for _ = 1 to k do
      tick_one ();
      if !step mod sample_every = 0 then push !step !b
    done
  in
  (try
     for y = 0 to Loads.Cursor.epoch_count cursor - 1 do
       let sch = Loads.Cursor.schedule cursor y in
       for _ = 1 to sch.draws do
         quiet_steps (sch.ct - 1);
         tick_one ();
         let drew, dead =
           if !b.Battery.n_gamma < sch.cur then (false, true)
           else begin
             b := Battery.draw d ~cur:sch.cur !b;
             (true, Battery.is_empty d !b)
           end
         in
         if drew || !step mod sample_every = 0 then push !step !b;
         if dead then begin
           push !step !b;
           raise Done
         end
       done;
       quiet_steps sch.rest
     done
   with Done -> ());
  List.rev !samples
