(** Discrete battery state and its event semantics (paper §4.2, Fig. 5(a,b)).

    A battery holds [n_gamma] remaining charge units and a height
    difference of [m_delta] height units; [recov_clock] is the integer
    valuation of the TA clock [c_recov] (time steps since the last
    recovery event / reset).  All transitions below mirror the
    [total charge] and [height difference] automata edges:

    - {!tick} — one time step elapses: the recovery clock advances and, if
      it has reached [recov_time m_delta] with [m_delta >= 2], one height
      unit recovers and the clock resets;
    - {!draw} — a [use_charge] synchronization: [cur] units are drawn
      ([n_gamma -= cur], [m_delta += cur]); the recovery clock resets
      exactly when recovery was not already running ([m_delta <= 1]
      before the draw, the edges leaving [m_delta_0] / [m_delta_1]), and
      an already-due recovery fires immediately afterwards (the
      [recov_time] table shrinks as [m_delta] grows, so the invariant can
      be violated by the jump and must be re-established at the same
      instant).

    Emptiness (paper eq. (8)) is a *predicate*, not a state: the automaton
    observes it at draw instants, which is when callers should test
    {!is_empty}. *)

type t = private { n_gamma : int; m_delta : int; recov_clock : int }

val full : Discretization.t -> t
(** n_gamma = N, m_delta = 0 (paper §4.1 initial conditions). *)

val make : Discretization.t -> n_gamma:int -> m_delta:int -> recov_clock:int -> t
(** Arbitrary (validated) state, for tests: requires
    [0 <= n_gamma <= N], [0 <= m_delta <= N] and [recov_clock >= 0]. *)

val make_result :
  ?input:string ->
  Discretization.t ->
  n_gamma:int ->
  m_delta:int ->
  recov_clock:int ->
  (t, Guard.Error.t) result
(** [make] with the range violations reported as structured data — for
    battery states that originate from user input rather than code;
    [input] names the source (a CLI flag, a file). *)

val tick : Discretization.t -> t -> t
(** One time step of recovery. *)

val tick_many : Discretization.t -> int -> t -> t
(** [tick_many d k b] applies [tick] [k] times, in O(number of recovery
    events) rather than O(k). *)

val draw : Discretization.t -> cur:int -> t -> t
(** One discharge event of [cur >= 1] units.  Raises [Invalid_argument]
    if the battery does not hold [cur] units. *)

val is_empty : Discretization.t -> t -> bool
val available_milli_units : Discretization.t -> t -> int

val available_charge : Discretization.t -> t -> float
(** y1 in A·min, from the discrete state: [c·(γ − (1 − c)·δ)] with
    γ = n·Γ and δ = m·Γ/c. *)

val total_charge : Discretization.t -> t -> float
(** γ = n·Γ in A·min. *)

val to_continuous : Discretization.t -> t -> Kibam.State.t
(** The (δ, γ) state this discrete state represents. *)

val of_continuous : Discretization.t -> Kibam.State.t -> t
(** Nearest discrete state (recovery clock zeroed). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
