type t = { n_gamma : int; m_delta : int; recov_clock : int }

let full (d : Discretization.t) =
  { n_gamma = d.n_units; m_delta = 0; recov_clock = 0 }

let make (d : Discretization.t) ~n_gamma ~m_delta ~recov_clock =
  if n_gamma < 0 || n_gamma > d.n_units then
    invalid_arg "Dkibam.Battery.make: n_gamma out of range";
  if m_delta < 0 || m_delta > d.n_units then
    invalid_arg "Dkibam.Battery.make: m_delta out of range";
  if recov_clock < 0 then invalid_arg "Dkibam.Battery.make: negative clock";
  { n_gamma; m_delta; recov_clock }

(* Same checks as [make], reported as data: battery states can come
   from user input (CLI pack descriptions, checkpointed states), where
   a range violation is a bad input, not a programming error. *)
let make_result ?input (d : Discretization.t) ~n_gamma ~m_delta ~recov_clock =
  let err field value accepted what =
    Error
      (Guard.Error.make ~subsystem:"dkibam.battery" ?input ~field
         ~value:(string_of_int value) ~accepted what)
  in
  if n_gamma < 0 || n_gamma > d.n_units then
    err "n_gamma" n_gamma
      (Printf.sprintf "0 <= n_gamma <= %d (the pack's N)" d.n_units)
      "remaining charge units out of range"
  else if m_delta < 0 || m_delta > d.n_units then
    err "m_delta" m_delta
      (Printf.sprintf "0 <= m_delta <= %d (the pack's N)" d.n_units)
      "height-difference units out of range"
  else if recov_clock < 0 then
    err "recov_clock" recov_clock "a non-negative number of time steps"
      "recovery clock out of range"
  else Ok { n_gamma; m_delta; recov_clock }

(* The transition arithmetic lives in [Kernel], shared with the
   struct-of-arrays batch engine; this module only boxes it. *)

let tick d b =
  let m_delta, recov_clock =
    Kernel.tick d ~m:b.m_delta ~clock:b.recov_clock ~steps:1
  in
  { b with m_delta; recov_clock }

let tick_many d k b =
  if k < 0 then invalid_arg "Dkibam.Battery.tick_many: negative step count";
  let m_delta, recov_clock =
    Kernel.tick d ~m:b.m_delta ~clock:b.recov_clock ~steps:k
  in
  { b with m_delta; recov_clock }

let draw d ~cur b =
  if cur < 1 then invalid_arg "Dkibam.Battery.draw: cur must be >= 1";
  if b.n_gamma < cur then
    invalid_arg "Dkibam.Battery.draw: not enough charge units left";
  let n_gamma, m_delta, recov_clock =
    Kernel.draw d ~n:b.n_gamma ~m:b.m_delta ~clock:b.recov_clock ~cur
  in
  { n_gamma; m_delta; recov_clock }

let is_empty d b = Discretization.is_empty d ~n:b.n_gamma ~m:b.m_delta

let available_milli_units d b =
  Discretization.available_milli_units d ~n:b.n_gamma ~m:b.m_delta

let available_charge (d : Discretization.t) b =
  float_of_int (available_milli_units d b) *. d.charge_unit /. 1000.0

let total_charge d b = Discretization.charge_of_units d b.n_gamma

let to_continuous (d : Discretization.t) b =
  {
    Kibam.State.gamma = float_of_int b.n_gamma *. d.charge_unit;
    delta = float_of_int b.m_delta *. Discretization.height_unit d;
  }

let of_continuous (d : Discretization.t) (s : Kibam.State.t) =
  let n = int_of_float (Float.round (s.gamma /. d.charge_unit)) in
  let m = int_of_float (Float.round (s.delta /. Discretization.height_unit d)) in
  make d ~n_gamma:(max 0 (min d.n_units n)) ~m_delta:(max 0 (min d.n_units m))
    ~recov_clock:0

let pp ppf b =
  Format.fprintf ppf "{ n = %d; m = %d; c_recov = %d }" b.n_gamma b.m_delta
    b.recov_clock

let equal a b = a = b
let compare = Stdlib.compare
