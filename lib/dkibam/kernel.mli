(** The all-integer dKiBaM transition arithmetic — the numeric core
    shared by the boxed scalar path ({!Battery}) and the
    struct-of-arrays batch engine ([Batch.Engine]).

    A battery's dynamic state is three integers: [n] remaining charge
    units, [m] height-difference units, [clock] steps since the last
    recovery event (the TA clock [c_recov]).  {!Battery} wraps them in
    an immutable record; the batch engine keeps them in flat per-lane
    arrays.  Both express every transition through this module, so the
    two paths execute {e the same} recurrences and cannot drift — the
    bit-identity contract of the batch engine rests on it. *)

val tick : Discretization.t -> m:int -> clock:int -> steps:int -> int * int
(** [tick d ~m ~clock ~steps] advances one battery [steps] time steps of
    pure recovery and returns its new [(m, clock)].  Runs in O(number of
    recovery events), jumping from event to event: while [m >= 2] each
    recovery is due [max 1 (recov_time m - clock)] steps ahead (an
    already-overdue recovery — possible for hand-built states — fires on
    the next step) and resets the clock; below [m = 2] the remaining
    steps only age the clock.  Raises [Invalid_argument] when [steps] is
    negative. *)

val draw : Discretization.t -> n:int -> m:int -> clock:int -> cur:int ->
  int * int * int
(** [draw d ~n ~m ~clock ~cur] applies one [use_charge] event of [cur]
    units and returns the new [(n, m, clock)]: the recovery clock resets
    exactly when recovery was not already running ([m <= 1] before the
    draw), then [n -= cur], [m += cur], and an already-due recovery
    fires immediately at the same instant (the settle rule).  Unchecked:
    callers validate [cur >= 1] and [n >= cur] first — {!Battery.draw}
    raises, [Sched.Bank.draw_from] and the batch engine treat the
    shortfall as the fatal-draw observation. *)

val is_empty : Discretization.t -> n:int -> m:int -> bool
(** Paper eq. (8) on raw state — alias of {!Discretization.is_empty}. *)

val available_milli : Discretization.t -> n:int -> m:int -> int
(** Available charge in milli-units — alias of
    {!Discretization.available_milli_units}. *)
