(** Plain-text rendering of the reproduced tables and figures.

    Output is aligned, ASCII-only, and prints paper-vs-measured columns
    with relative differences, so that `dune exec bench/main.exe` and
    `batsched tables` read like the paper's evaluation section. *)

val table3 : Format.formatter -> Experiments.validation_row list -> unit
val table4 : Format.formatter -> Experiments.validation_row list -> unit
val table5 : Format.formatter -> Experiments.schedule_row list -> unit

val figure6 :
  Format.formatter -> label:string -> Experiments.fig6 -> unit
(** Gnuplot-ready series: one block per battery with
    [time total available] columns, then the schedule steps — the same
    data Figure 6 plots. *)

val capacity_sweep : Format.formatter -> (float * float * float) list -> unit
val complexity : Format.formatter -> (Loads.Testloads.name * int * int * float) list -> unit
val model_comparison : Format.formatter -> (Loads.Testloads.name * float * float) list -> unit
val cross_validation : Format.formatter -> Experiments.cross_validation -> unit

val pct_diff : float -> float -> float
(** [pct_diff measured reference] = 100·(measured − reference)/reference. *)

val lookahead_sweep :
  Format.formatter -> load:Loads.Testloads.name -> (int option * float) list -> unit

val granularity_sweep :
  Format.formatter -> Experiments.granularity_row list -> unit

val multi_battery :
  Format.formatter -> load:Loads.Testloads.name -> (int * Sched.Analysis.t) list -> unit

val ensemble : Format.formatter -> Sched.Ensemble.t -> unit

val montecarlo : Format.formatter -> Sched.Montecarlo.t -> unit
(** The Monte Carlo fleet summary: one distribution row per policy
    (deaths, survivors, mean/stddev, percentile lifetimes), then the
    optional death-before-deadline table, the pairwise-dominance table
    with confidence intervals, and the budget-trip note when the run
    was cut short.  Prints no wall-clock times: equal results render
    byte-identically, which is what the determinism acceptance check
    diffs. *)
