let pct_diff measured reference = 100.0 *. (measured -. reference) /. reference

let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let validation_table title ppf (rows : Experiments.validation_row list) =
  Format.fprintf ppf "%s@." title;
  hr ppf 78;
  Format.fprintf ppf "%-8s  %10s %10s %7s   %10s %10s %7s@." "load" "KiBaM"
    "paper" "diff%" "dKiBaM" "paper" "diff%";
  hr ppf 78;
  List.iter
    (fun (r : Experiments.validation_row) ->
      let note =
        if Paper_data.reconstructed r.load then "  (reconstructed sequence)"
        else ""
      in
      Format.fprintf ppf "%-8s  %10.2f %10.2f %+7.2f   %10.2f %10.2f %+7.2f%s@."
        (Loads.Testloads.to_string r.load)
        r.analytic r.paper_analytic
        (pct_diff r.analytic r.paper_analytic)
        r.discrete r.paper_discrete
        (pct_diff r.discrete r.paper_discrete)
        note)
    rows;
  hr ppf 78

let table3 ppf rows =
  validation_table
    "Table 3: battery B1 lifetimes (min), analytic KiBaM vs discretized dKiBaM"
    ppf rows

let table4 ppf rows =
  validation_table
    "Table 4: battery B2 lifetimes (min), analytic KiBaM vs discretized dKiBaM"
    ppf rows

let table5 ppf (rows : Experiments.schedule_row list) =
  Format.fprintf ppf
    "Table 5: system lifetime (min), two B1 batteries, four schedulers@.";
  Format.fprintf ppf "(each cell: measured/paper; %%rr = gain over round robin)@.";
  hr ppf 100;
  Format.fprintf ppf "%-8s  %15s %15s %15s %15s %8s %8s@." "load" "sequential"
    "round robin" "best-of-two" "optimal" "opt%rr" "paper";
  hr ppf 100;
  List.iter
    (fun (r : Experiments.schedule_row) ->
      let cell m p = Format.asprintf "%6.2f/%6.2f" m p in
      let opt_gain = pct_diff r.optimal r.round_robin in
      let paper_gain = pct_diff r.paper.optimal r.paper.round_robin in
      let note =
        if Paper_data.reconstructed r.load then "  (reconstructed sequence)"
        else ""
      in
      Format.fprintf ppf "%-8s  %15s %15s %15s %15s %+7.1f%% %+7.1f%%%s@."
        (Loads.Testloads.to_string r.load)
        (cell r.sequential r.paper.sequential)
        (cell r.round_robin r.paper.round_robin)
        (cell r.best_of_two r.paper.best_of_two)
        (cell r.optimal r.paper.optimal)
        opt_gain paper_gain note)
    rows;
  hr ppf 100

let figure6 ppf ~label (f : Experiments.fig6) =
  Format.fprintf ppf
    "Figure 6 (%s): ILs alt, two B1 batteries; lifetime %.2f min, %.0f%% of \
     the charge stranded@."
    label f.lifetime (100.0 *. f.stranded_fraction);
  let n =
    match f.points with [] -> 0 | p :: _ -> Array.length p.total
  in
  for b = 0 to n - 1 do
    Format.fprintf ppf "# battery %d: time(min) total(A*min) available(A*min)@." b;
    List.iter
      (fun (p : Experiments.fig6_point) ->
        Format.fprintf ppf "%8.2f %8.4f %8.4f@." p.time p.total.(b)
          p.available.(b))
      f.points;
    Format.fprintf ppf "@."
  done;
  Format.fprintf ppf "# schedule: from(min) to(min) battery@.";
  List.iter
    (fun (a, b, bat) -> Format.fprintf ppf "%8.2f %8.2f %d@." a b bat)
    f.intervals

let capacity_sweep ppf rows =
  Format.fprintf ppf
    "Capacity sweep (S6 ablation): two scaled-B1 batteries, best-of-two, ILs \
     alt@.";
  Format.fprintf ppf "%8s %14s %18s@." "factor" "lifetime(min)" "stranded fraction";
  List.iter
    (fun (f, lt, frac) ->
      Format.fprintf ppf "%8.1f %14.2f %17.1f%%@." f lt (100.0 *. frac))
    rows

let complexity ppf rows =
  Format.fprintf ppf
    "Optimal-search complexity probe (S4.4): decisions vs memo positions@.";
  Format.fprintf ppf "%-8s %10s %12s %10s@." "load" "decisions" "positions" "seconds";
  List.iter
    (fun (name, decisions, positions, dt) ->
      Format.fprintf ppf "%-8s %10d %12d %10.3f@."
        (Loads.Testloads.to_string name)
        decisions positions dt)
    rows

let model_comparison ppf rows =
  Format.fprintf ppf
    "Model-fidelity ablation: analytic KiBaM vs Rakhmatov-Vrudhula diffusion \
     (B1, minutes)@.";
  Format.fprintf ppf "%-8s %10s %12s %8s@." "load" "KiBaM" "diffusion" "diff%";
  List.iter
    (fun (name, k, d) ->
      Format.fprintf ppf "%-8s %10.2f %12.2f %+7.2f@."
        (Loads.Testloads.to_string name)
        k d (pct_diff d k))
    rows

let cross_validation ppf (c : Experiments.cross_validation) =
  Format.fprintf ppf "Engine cross-validation (TA-KiBaM min-cost search vs fast \
                      branch-and-bound)@.";
  Format.fprintf ppf "instance: %s@." c.toy_description;
  Format.fprintf ppf
    "fast: lifetime %d steps, stranded %d units;  TA: lifetime %d steps, \
     stranded %d units  ->  %s@."
    c.fast_lifetime_steps c.fast_stranded c.ta_lifetime_steps c.ta_stranded
    (if c.agrees then "AGREE" else "DISAGREE")

let lookahead_sweep ppf ~load rows =
  Format.fprintf ppf
    "Lookahead ablation (X2): bounded-horizon scheduling on %s, two B1 \
     batteries@."
    (Loads.Testloads.to_string load);
  Format.fprintf ppf "%12s %14s@." "policy" "lifetime(min)";
  let n = List.length rows in
  List.iteri
    (fun k (depth, lt) ->
      let label =
        match depth with
        | Some d -> Printf.sprintf "lookahead %d" d
        | None -> if k = 0 then "best-of-two" else if k = n - 1 then "optimal" else "?"
      in
      Format.fprintf ppf "%12s %14.2f@." label lt)
    rows

let granularity_sweep ppf rows =
  Format.fprintf ppf
    "Granularity ablation (A3): dKiBaM accuracy and search size vs (T, \
     Gamma), single/two B1 on ILs alt@.";
  Format.fprintf ppf "%10s %10s %14s %10s %12s@." "T (min)" "Gamma" "lifetime"
    "err vs exact" "positions";
  List.iter
    (fun (r : Experiments.granularity_row) ->
      Format.fprintf ppf "%10.4f %10.3f %14.3f %9.2f%% %12d@." r.g_time_step
        r.g_charge_unit r.g_lifetime
        (100.0 *. r.g_error_vs_analytic)
        r.g_positions)
    rows

let multi_battery ppf ~load rows =
  Format.fprintf ppf
    "Multi-battery generalization (beyond the paper): B1 packs on %s@."
    (Loads.Testloads.to_string load);
  List.iter (fun (_, a) -> Format.fprintf ppf "%a@." Sched.Analysis.pp a) rows

let ensemble ppf (e : Sched.Ensemble.t) =
  Format.fprintf ppf
    "Random-load ensemble (the paper's section 7 outlook): %d random ILs \
     loads, %d batteries@."
    e.n_loads e.n_batteries;
  Format.fprintf ppf "%-12s %8s %8s %8s %8s %8s %8s %8s@." "policy" "mean"
    "stddev" "min" "q25" "median" "q75" "max";
  List.iter
    (fun (name, (s : Sched.Ensemble.stats)) ->
      Format.fprintf ppf "%-12s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f@."
        name s.mean s.stddev s.minimum s.q25 s.median s.q75 s.maximum)
    e.per_policy;
  let g = e.top_gain_over_rr in
  Format.fprintf ppf
    "%s gain over round robin: mean %+.1f%%, median %+.1f%%, max %+.1f%%@."
    e.gain_baseline g.mean g.median g.maximum;
  if e.gain_baseline = "optimal" then
    Format.fprintf ppf "best-of already optimal on %.0f%% of the loads@."
      (100.0 *. e.best_of_matches_top_fraction)
  else
    Format.fprintf ppf
      "(optimal search skipped: gains are measured against %s, a lower \
       bound on the true optimal gain)@."
      e.gain_baseline;
  if e.budget_exhausted > 0 then
    Format.fprintf ppf
      "(budget exhausted on %d of %d loads: their \"optimal\" figures are \
       anytime lower bounds, not proven optima)@."
      e.budget_exhausted e.n_loads

let montecarlo ppf (m : Sched.Montecarlo.t) =
  Format.fprintf ppf
    "Monte Carlo fleet: model %s, seed %Ld, %d of %d samples, %d batteries@."
    m.mc_model m.mc_seed m.mc_samples m.mc_samples_requested m.mc_n_batteries;
  (match m.mc_policies with
  | [] -> ()
  | first :: _ ->
      Format.fprintf ppf "%-12s %8s %8s %9s %9s" "policy" "deaths" "survived"
        "mean" "stddev";
      List.iter
        (fun (q, _) -> Format.fprintf ppf " %8s" (Printf.sprintf "p%g" (100.0 *. q)))
        first.Sched.Montecarlo.ps_quantiles;
      Format.fprintf ppf "@.");
  List.iter
    (fun (ps : Sched.Montecarlo.policy_summary) ->
      Format.fprintf ppf "%-12s %8d %8d %9.3f %9.3f" ps.ps_policy ps.ps_deaths
        ps.ps_survived ps.ps_mean ps.ps_stddev;
      List.iter (fun (_, v) -> Format.fprintf ppf " %8.3f" v) ps.ps_quantiles;
      Format.fprintf ppf "@.")
    m.mc_policies;
  let dbs =
    List.filter_map
      (fun (ps : Sched.Montecarlo.policy_summary) ->
        Option.map (fun db -> (ps.ps_policy, db)) ps.ps_death_before)
      m.mc_policies
  in
  (match dbs with
  | [] -> ()
  | (_, (db0 : Sched.Montecarlo.death_before)) :: _ ->
      Format.fprintf ppf
        "P(death before %g min), 95%% normal-approximation CI:@."
        db0.db_deadline_min;
      List.iter
        (fun (name, (db : Sched.Montecarlo.death_before)) ->
          Format.fprintf ppf "  %-12s %6.4f  [%6.4f, %6.4f]  (%d of %d)@." name
            db.db_fraction db.db_ci_low db.db_ci_high db.db_deaths m.mc_samples)
        dbs);
  if m.mc_dominance <> [] then begin
    Format.fprintf ppf
      "pairwise dominance (paired samples; fraction where A strictly \
       outlives B, 95%% CI):@.";
    List.iter
      (fun (d : Sched.Montecarlo.dominance) ->
        Format.fprintf ppf
          "  %-12s > %-12s %6.4f  [%6.4f, %6.4f]  (A %d / ties %d / B %d)@."
          d.dom_a d.dom_b d.dom_a_fraction d.dom_ci_low d.dom_ci_high
          d.dom_a_wins d.dom_ties d.dom_b_wins)
      m.mc_dominance
  end;
  match m.mc_tripped with
  | None -> ()
  | Some trip ->
      Format.fprintf ppf
        "budget exhausted (%s): estimates reflect the %d completed samples@."
        (Guard.Budget.trip_to_string trip)
        m.mc_samples
